(* Stage 3: redirection — layout fixpoint, trampoline pool, emission. *)

open Avr
open Transform

type outcome = {
  nat : Naturalized.t;
  mapping : (int * int) array;
  reused_words : int;
  diags : Diagnostic.t list;
}

let internal fmt =
  Printf.ksprintf (fun s -> Rewrite_error.fail (Internal s)) fmt

let run ~(recovery : Recovery.t) ~(sites : site array) ~base ~heap_end
    (img : Asm.Image.t) : outcome =
  let diags = ref [] in
  let diag d = diags := d :: !diags in
  (* Unrelocatable terms: a reachable one is a hard error (the branch
     will be taken and there is no naturalized address to send it to);
     an unreachable one is rewritten best-effort and flagged. *)
  List.iter
    (fun (src, tgt) ->
      if Hashtbl.mem recovery.reachable src then
        Rewrite_error.fail (Misaligned_target { addr = src; target = tgt })
      else
        diag
          (Diagnostic.make Redirection Error ~addr:src "unrelocatable"
             "unreachable branch to mid-instruction 0x%04x rewritten best-effort"
             tgt))
    recovery.unrelocatable;
  let n = Array.length sites in
  (* --- layout fixpoint: shift table + forward-branch range check ------- *)
  let shift = ref (Shift_table.create ~base []) in
  let islands = ref 0 and long_jumps = ref 0 in
  let stable = ref false in
  while not !stable do
    let entries = ref [] in
    Array.iter
      (fun s -> if patched_size s > s.size then entries := s.addr :: !entries)
      sites;
    shift := Shift_table.create ~base !entries;
    stable := true;
    let nat a = Shift_table.to_naturalized !shift a in
    Array.iter
      (fun s ->
        match s.patch with
        | Cond (bit, if_set, tgt) ->
          let off = nat tgt - (nat s.addr + 1) in
          if off < -64 || off > 63 then begin
            (* Promote to a range island; fall-through is s.addr + 1. *)
            s.patch <- Jmp_to (Trampoline.Cond_island (bit, if_set, tgt, s.addr + 1));
            incr islands;
            stable := false
          end
        | Fwd_rjmp tgt when s.size = 1 ->
          let off = nat tgt - (nat s.addr + 1) in
          if off < -2048 || off > 2047 then begin
            s.patch <- Inline (Jmp 0) (* placeholder; retargeted at emission *);
            incr long_jumps;
            stable := false
          end
        | _ -> ())
      sites
  done;
  if !islands > 0 || !long_jumps > 0 then
    diag
      (Diagnostic.make Redirection Info "promoted"
         "%d conditional branch%s promoted to range islands, %d rjmp%s to JMP"
         !islands (if !islands = 1 then "" else "es")
         !long_jumps (if !long_jumps = 1 then "" else "s"));
  let shift = !shift in
  let nat a = Shift_table.to_naturalized shift a in
  let text_words = img.text_words + Shift_table.size shift in
  (* --- rodata placement ------------------------------------------------ *)
  let rodata_words = Array.length img.words - img.text_words in
  let rodata_base = base + text_words in
  let lpm_delta = 2 * (rodata_base - img.text_words) in
  (* --- trampoline pool -------------------------------------------------- *)
  let pool : (Trampoline.key, string) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let merged = ref 0 in
  let fresh_tramp = ref 0 in
  let rec request key =
    match Hashtbl.find_opt pool key with
    | Some l ->
      incr merged;
      l
    | None ->
      incr fresh_tramp;
      let l = Printf.sprintf "t%d" !fresh_tramp in
      Hashtbl.replace pool key l;
      (* Materialize dependencies (shared services) eagerly so they are
         part of the emitted program. *)
      let stmts = Trampoline.body ~heap_end ~service:request key in
      order := (l, stmts) :: !order;
      l
  in
  (* Resolve the placeholder next/target fields now that nat() is fixed. *)
  let patched = ref 0 in
  let resolved_key s (key : Trampoline.key) : Trampoline.key =
    let next1 = nat (s.addr + s.size) in
    match key with
    | Setsp (w, rs, -1) ->
      (* Grouped pair skips the second instruction. *)
      let skip = match w with `Both -> 2 | `Lo | `Hi -> s.size in
      Setsp (w, rs, nat (s.addr + skip))
    | Getsp (ds, -1) ->
      let skip = if List.length ds = 2 && List.nth ds 0 <> List.nth ds 1 then 2 else s.size in
      Getsp (ds, nat (s.addr + skip))
    | Timer3_rd (ds, h, -1) ->
      let skip = if List.length ds = 2 then 2 else s.size in
      Timer3_rd (ds, h, nat (s.addr + skip))
    | Yield (-1) -> Yield next1
    | Push_head (r, b, -1) -> Push_head (r, b, next1)
    | Lpm_tr (rd, inc, _, -1) -> Lpm_tr (rd, inc, lpm_delta, next1)
    | Indirect_grp (ind, -1) ->
      Indirect_grp (ind, nat (s.addr + List.length ind.accesses))
    | Cond_branch (bit, set, tgt, -1) -> Cond_branch (bit, set, nat tgt, next1)
    | Cond_branch (bit, set, tgt, fall) -> Cond_branch (bit, set, nat tgt, nat fall)
    | Cond_island (bit, set, tgt, fall) -> Cond_island (bit, set, nat tgt, nat fall)
    | Back_jump tgt -> Back_jump (nat tgt)
    | Call_check tgt -> Call_check (nat tgt)
    | k -> k
  in
  (* First walk: request every trampoline so the support program is
     complete, remembering each site's label. *)
  let site_label = Array.make n "" in
  Array.iteri
    (fun idx s ->
      match s.patch with
      | Jmp_to key | Call_to key ->
        incr patched;
        (try site_label.(idx) <- request (resolved_key s key)
         with Trampoline.Unsupported reason ->
           Rewrite_error.fail
             (Unsupported { addr = s.addr; insn = Isa.show s.insn; reason }))
      | Inline _ -> incr patched
      | Keep | Skip | Cond _ | Fwd_rjmp _ | Verbatim -> ())
    sites;
  let support_prog =
    Asm.Ast.program (img.name ^ ".support")
      (List.concat_map (fun (l, stmts) -> Asm.Macros.lbl l :: stmts) (List.rev !order))
  in
  let support_base = rodata_base + rodata_words in
  let support_img = Asm.Assembler.assemble ~base:support_base support_prog in
  let tramp_addr l =
    match Asm.Image.find_symbol support_img l with
    | Some (Text a) -> a
    | _ -> internal "trampoline label %s lost" l
  in
  (* --- emit patched text ------------------------------------------------ *)
  let buf = ref [] in
  let emit i = List.iter (fun w -> buf := w :: !buf) (Encode.words i) in
  let emit_raw s = (* copy the original words unchanged (Skip/Verbatim) *)
    for w = s.addr to s.addr + s.size - 1 do
      buf := img.words.(w) :: !buf
    done
  in
  Array.iteri
    (fun idx s ->
      match s.patch with
      | Keep -> emit s.insn
      | Skip | Verbatim -> emit_raw s
      | Inline (Jmp _) ->
        (* Promoted forward rjmp: retarget. *)
        (match s.patch, s.insn with
         | _, (Rjmp k | Rcall k) -> emit (Jmp (nat (s.addr + s.size + k)))
         | _, Jmp a -> emit (Jmp (nat a))
         | _ -> internal "bad Inline Jmp site")
      | Inline i -> emit i
      | Jmp_to _ -> emit (Jmp (tramp_addr site_label.(idx)))
      | Call_to _ -> emit (Call (tramp_addr site_label.(idx)))
      | Cond (bit, if_set, tgt) ->
        let off = nat tgt - (nat s.addr + 1) in
        emit (if if_set then Brbs (bit, off) else Brbc (bit, off))
      | Fwd_rjmp tgt ->
        (match s.insn with
         | Rjmp _ ->
           let off = nat tgt - (nat s.addr + 1) in
           emit (Rjmp off)
         | Jmp _ -> emit (Jmp (nat tgt))
         | _ -> internal "bad Fwd_rjmp site"))
    sites;
  let text = Array.of_list (List.rev !buf) in
  if Array.length text <> text_words then
    internal "text size %d, expected %d" (Array.length text) text_words;
  (* Reused words: sites whose emitted form is word-identical in place
     (renovate's riReusedByteCount). *)
  let reused_words = ref 0 in
  Array.iter
    (fun s ->
      let psize = patched_size s in
      if psize = s.size then begin
        let at = nat s.addr - base in
        let same = ref true in
        for k = 0 to s.size - 1 do
          if text.(at + k) <> img.words.(s.addr + k) then same := false
        done;
        if !same then reused_words := !reused_words + s.size
      end)
    sites;
  let rodata = Array.sub img.words img.text_words rodata_words in
  let words = Array.concat [ text; rodata; support_img.words ] in
  let nat_image =
    { Naturalized.source = img;
      base;
      words;
      text_words;
      rodata_words;
      support_words = Array.length support_img.words;
      shift;
      heap_end_logical = heap_end;
      entry = nat img.entry;
      stats =
        { patched = !patched;
          trampolines = !fresh_tramp;
          merged = !merged;
          shift_entries = Shift_table.size shift } }
  in
  let mapping =
    Array.map (fun (b : Recovery.block) -> (b.b_start, nat b.b_start)) recovery.blocks
  in
  { nat = nat_image; mapping; reused_words = !reused_words; diags = List.rev !diags }
