examples/quickstart.mli:
