(* AVR (ATmega128L) instruction-set subset used throughout the
   reproduction.  The subset is rich enough to express every benchmark
   program of the paper (recursion, pointer walks, I/O polling) while
   excluding the skip instructions (CPSE/SBRC/SBRS) whose interaction with
   variable-length successors the paper does not define for rewriting. *)

type reg = int [@@deriving show { with_path = false }, eq, ord]
(** General-purpose register index, [0..31]. *)

type ptr =
  | X
  | X_inc
  | X_dec
  | Y_inc
  | Y_dec
  | Z_inc
  | Z_dec
      (** Indirect pointer addressing modes for [Ld]/[St].  Plain [Y] and
          [Z] (no post-inc/pre-dec) are expressed as [Ldd]/[Std] with
          displacement 0, exactly as the AVR encoder does. *)
[@@deriving show { with_path = false }, eq, ord]

type base =
  | Ybase
  | Zbase  (** Base register of a displacement ([Ldd]/[Std]) access. *)
[@@deriving show { with_path = false }, eq, ord]

(* Status-register bit numbers, for [Brbs]/[Brbc]/[Bset]/[Bclr]. *)
let bit_c = 0
let bit_z = 1
let bit_n = 2
let bit_v = 3
let bit_s = 4
let bit_h = 5
let bit_t = 6
let bit_i = 7

type t =
  | Nop
  | Movw of reg * reg  (** [Movw (d, r)]: move register pair; both even. *)
  | Add of reg * reg
  | Adc of reg * reg
  | Sub of reg * reg
  | Sbc of reg * reg
  | And of reg * reg
  | Or of reg * reg
  | Eor of reg * reg
  | Mov of reg * reg
  | Cp of reg * reg
  | Cpc of reg * reg
  | Mul of reg * reg  (** Unsigned multiply into r1:r0. *)
  | Cpi of reg * int  (** d in [16..31], immediate in [0..255]. *)
  | Sbci of reg * int
  | Subi of reg * int
  | Ori of reg * int
  | Andi of reg * int
  | Ldi of reg * int
  | Adiw of reg * int  (** d in {24,26,28,30}, immediate in [0..63]. *)
  | Sbiw of reg * int
  | Com of reg
  | Neg of reg
  | Swap of reg
  | Inc of reg
  | Dec of reg
  | Asr of reg
  | Lsr of reg
  | Ror of reg
  | Ld of reg * ptr
  | Ldd of reg * base * int  (** Displacement in [0..63]. *)
  | St of ptr * reg
  | Std of base * int * reg
  | Lds of reg * int  (** 32-bit: direct load, data address in [0..65535]. *)
  | Sts of int * reg  (** 32-bit: direct store. *)
  | Lpm of reg * bool  (** [Lpm (d, post_inc)]: load from program memory at Z. *)
  | Push of reg
  | Pop of reg
  | In of reg * int  (** I/O address in [0..63]. *)
  | Out of int * reg
  | Rjmp of int  (** Signed word offset in [-2048..2047], relative to PC+1. *)
  | Rcall of int
  | Jmp of int  (** 32-bit: absolute word address. *)
  | Call of int  (** 32-bit: absolute word address. *)
  | Ijmp  (** Jump to the word address held in Z. *)
  | Icall
  | Ret
  | Reti
  | Brbs of int * int  (** [Brbs (bit, off)]: branch if SREG bit set; signed word offset in [-64..63]. *)
  | Brbc of int * int
  | Bset of int
  | Bclr of int
  | Sleep
  | Break
  | Wdr
  | Syscall of int
      (** Reserved encoding ([1111 1111 kkkk 1kkk], unused on real AVR)
          that the simulator routes to the installed kernel.  Stands in
          for the fixed kernel entry points the real SenSmart trampolines
          jump into; argument in [0..127]. *)
[@@deriving show { with_path = false }, eq, ord]

(** Number of 16-bit program words the instruction occupies. *)
let words = function
  | Lds _ | Sts _ | Jmp _ | Call _ -> 2
  | Nop | Movw _ | Add _ | Adc _ | Sub _ | Sbc _ | And _ | Or _ | Eor _
  | Mov _ | Cp _ | Cpc _ | Mul _ | Cpi _ | Sbci _ | Subi _ | Ori _ | Andi _
  | Ldi _ | Adiw _ | Sbiw _ | Com _ | Neg _ | Swap _ | Inc _ | Dec _ | Asr _
  | Lsr _ | Ror _ | Ld _ | Ldd _ | St _ | Std _ | Lpm _ | Push _ | Pop _
  | In _ | Out _ | Rjmp _ | Rcall _ | Ijmp | Icall | Ret | Reti | Brbs _
  | Brbc _ | Bset _ | Bclr _ | Sleep | Break | Wdr | Syscall _ -> 1

(* Well-formedness of operand ranges; the encoder asserts this. *)
let valid = function
  | Movw (d, r) -> d land 1 = 0 && r land 1 = 0 && d < 32 && r < 32
  | Add (d, r) | Adc (d, r) | Sub (d, r) | Sbc (d, r) | And (d, r)
  | Or (d, r) | Eor (d, r) | Mov (d, r) | Cp (d, r) | Cpc (d, r)
  | Mul (d, r) -> d >= 0 && d < 32 && r >= 0 && r < 32
  | Cpi (d, k) | Sbci (d, k) | Subi (d, k) | Ori (d, k) | Andi (d, k)
  | Ldi (d, k) -> d >= 16 && d < 32 && k >= 0 && k < 256
  | Adiw (d, k) | Sbiw (d, k) ->
    (d = 24 || d = 26 || d = 28 || d = 30) && k >= 0 && k < 64
  | Com d | Neg d | Swap d | Inc d | Dec d | Asr d | Lsr d | Ror d
  | Push d | Pop d -> d >= 0 && d < 32
  | Ld (d, _) | Lpm (d, _) -> d >= 0 && d < 32
  | St (_, r) -> r >= 0 && r < 32
  | Ldd (d, _, q) -> d >= 0 && d < 32 && q >= 0 && q < 64
  | Std (_, q, r) -> r >= 0 && r < 32 && q >= 0 && q < 64
  | Lds (d, a) -> d >= 0 && d < 32 && a >= 0 && a < 0x10000
  | Sts (a, r) -> r >= 0 && r < 32 && a >= 0 && a < 0x10000
  | In (d, a) -> d >= 0 && d < 32 && a >= 0 && a < 64
  | Out (a, r) -> r >= 0 && r < 32 && a >= 0 && a < 64
  | Rjmp k | Rcall k -> k >= -2048 && k < 2048
  | Jmp a | Call a -> a >= 0 && a < 0x400000
  | Brbs (s, k) | Brbc (s, k) -> s >= 0 && s < 8 && k >= -64 && k < 64
  | Bset s | Bclr s -> s >= 0 && s < 8
  | Syscall k -> k >= 0 && k < 128
  | Nop | Ijmp | Icall | Ret | Reti | Sleep | Break | Wdr -> true

(** Classification used by the rewriter (Section IV-A of the paper). *)

(* Relative control-flow target, in words, relative to the address *after*
   this instruction — [Some off] for PC-relative branches and jumps. *)
let relative_target = function
  | Rjmp k | Rcall k | Brbs (_, k) | Brbc (_, k) -> Some k
  | _ -> None

(* Does the instruction touch data memory through a pointer register or a
   direct address (the accesses the rewriter must translate)? *)
let is_data_access = function
  | Ld _ | Ldd _ | St _ | Std _ | Lds _ | Sts _ -> true
  | _ -> false

(* Stack-mutating instructions (LIFO accesses via SP). *)
let is_stack_op = function
  | Push _ | Pop _ | Rcall _ | Call _ | Icall | Ret | Reti -> true
  | _ -> false

(** Classification used by the tier-1 block compiler (see DESIGN.md,
    "Execution tiers").  SenSmart's rewriter already cuts programs into
    straight-line runs bounded by control transfers; the simulator's
    block engine compiles exactly those runs. *)

(* Does the instruction end a basic block?  Unconditional control
   transfers, the kernel-entry gate, and the halt/sleep instructions all
   hand control back to the run loop.  Conditional branches do NOT end a
   block: the compiler keeps collecting the fall-through path and turns
   the branch into an in-body early exit, so branchy loops still compile
   into long superblocks. *)
let ends_block = function
  | Rjmp _ | Rcall _ | Jmp _ | Call _ | Ijmp | Icall | Ret | Reti
  | Sleep | Break | Syscall _ -> true
  | _ -> false

(* Conditional branch: a superblock side exit (see {!ends_block}). *)
let is_cond_branch = function Brbs _ | Brbc _ -> true | _ -> false

(* May the instruction touch the data space (and therefore dispatch to a
   cycle-sensitive peripheral register)?  Such instructions need the
   exact cycle count at their execution point, so the block compiler
   cannot fold their cycle cost into a pre-summed run. *)
let touches_data_memory = function
  | Ld _ | Ldd _ | St _ | Std _ | Lds _ | Sts _ | Push _ | Pop _
  | In _ | Out _ -> true
  | _ -> false
