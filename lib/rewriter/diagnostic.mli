(** Typed diagnostics emitted by the three rewriting stages.

    Every stage of the pipeline ({!Recovery}, {!Transform},
    {!Redirection}) reports noteworthy-but-non-fatal observations as
    values of {!t}; the driver aggregates them into the
    {!Report.t} handed back to callers and serialized by
    [sensmart_cli rewrite --report].  Fatal conditions use
    {!Rewrite_error} instead — a diagnostic never aborts a rewrite. *)

(** Pipeline stage that produced the diagnostic. *)
type stage =
  | Recovery  (** block recovery / reachability *)
  | Transform  (** naturalization decisions (grouping, patch selection) *)
  | Redirection  (** relocation fixup and emission *)

(** How seriously the consumer should take it.  [Error]-severity
    diagnostics mark constructs the rewriter handled conservatively but
    whose runtime behaviour may differ from the native image (e.g. an
    unrelocatable branch term in unreachable code). *)
type severity = Info | Warning | Error

type t = {
  stage : stage;
  severity : severity;
  addr : int option;
      (** original flash word address the diagnostic refers to, when it
          refers to one place *)
  kind : string;
      (** stable machine-readable tag, e.g. ["gap"], ["conservative"],
          ["unrelocatable"]; the full set is documented in DESIGN.md *)
  message : string;  (** human-readable explanation *)
}

(** [make stage severity ?addr kind fmt ...] builds a diagnostic with a
    printf-formatted message. *)
val make :
  stage ->
  severity ->
  ?addr:int ->
  string ->
  ('a, unit, string, t) format4 ->
  'a

val stage_name : stage -> string
val severity_name : severity -> string

(** Render as ["recovery:warning[0x0012] gap: ..."]. *)
val pp : Format.formatter -> t -> unit

(** One diagnostic as a JSON object (fields [stage], [severity],
    [addr] (or null), [kind], [message]) — the element type of the
    report's [diagnostics] array. *)
val to_json : t -> string

(** Number of diagnostics at [Error] severity. *)
val errors : t list -> int

(** JSON string escaping shared by the report emitters. *)
val escape : string -> string
