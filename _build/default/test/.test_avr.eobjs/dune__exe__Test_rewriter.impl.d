test/test_rewriter.ml: Alcotest Array Asm Avr Kernel List Machine Printf QCheck QCheck_alcotest Rewriter
