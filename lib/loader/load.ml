(* Firmware loading: Intel-HEX / AVR ELF bytes -> Asm.Image.t. *)

type error =
  | Hex of Hex.error
  | Elf of Elf.error
  | Empty
  | Too_large of { bytes : int; limit : int }
  | Bad_layout of { what : string }

let error_message = function
  | Hex e -> "hex: " ^ Hex.error_message e
  | Elf e -> "elf: " ^ Elf.error_message e
  | Empty -> "no loadable bytes"
  | Too_large { bytes; limit } ->
    Printf.sprintf "image is %d bytes; flash holds %d" bytes limit
  | Bad_layout { what } -> "bad layout: " ^ what

let default_data_size = 1024

let flash_bytes = 2 * Machine.Layout.flash_words

let of_segments ~name ?(entry = 0) ?text_bytes ?(data_size = default_data_size)
    (segments : (int * Bytes.t) list) : (Asm.Image.t, error) result =
  let span =
    List.fold_left (fun m (a, b) -> max m (a + Bytes.length b)) 0 segments
  in
  if span = 0 then Error Empty
  else if span > flash_bytes then Error (Too_large { bytes = span; limit = flash_bytes })
  else begin
    let nbytes = (span + 1) land lnot 1 in
    (* Gaps between segments read as erased flash. *)
    let bytes = Bytes.make nbytes '\xFF' in
    List.iter (fun (a, b) -> Bytes.blit b 0 bytes a (Bytes.length b)) segments;
    let words =
      Array.init (nbytes / 2) (fun i ->
          Bytes.get_uint8 bytes (2 * i) lor (Bytes.get_uint8 bytes ((2 * i) + 1) lsl 8))
    in
    let text_bytes = match text_bytes with Some t -> t | None -> span in
    let text_words = min (Array.length words) ((text_bytes + 1) / 2) in
    if text_words <= 0 then Error (Bad_layout { what = "empty text segment" })
    else
      Ok
        { Asm.Image.name;
          words;
          text_words;
          symbols = [];
          data_size;
          data_init = [];
          entry }
  end

let of_hex ~name ?entry ?text_bytes ?data_size (input : string) :
    (Asm.Image.t, error) result =
  match Hex.parse input with
  | Error e -> Error (Hex e)
  | Ok segments -> of_segments ~name ?entry ?text_bytes ?data_size segments

let of_elf ~name (input : string) : (Asm.Image.t, error) result =
  match Elf.parse input with
  | Error e -> Error (Elf e)
  | Ok { entry; segments } ->
    let flash, data =
      List.partition (fun (s : Elf.segment) -> s.vaddr < Elf.data_space) segments
    in
    (* Everything lands in flash at its LMA; the data segments' virtual
       addresses size the logical heap. *)
    let byte_segments =
      List.filter_map
        (fun (s : Elf.segment) ->
          if s.filesz = 0 then None else Some (s.paddr, Bytes.of_string s.data))
        segments
    in
    let text_bytes =
      List.fold_left
        (fun acc (s : Elf.segment) -> min acc s.paddr)
        max_int data
      |> fun t ->
      if t = max_int then
        (* No data segment: all of flash is text. *)
        List.fold_left (fun m (s : Elf.segment) -> max m (s.paddr + s.filesz)) 0 flash
      else t
    in
    let data_size =
      List.fold_left
        (fun acc (s : Elf.segment) ->
          let logical = s.vaddr - Elf.data_space in
          if logical < Asm.Image.heap_base then
            (* Reported below via Bad_layout. *)
            acc
          else max acc (logical - Asm.Image.heap_base + s.memsz))
        0 data
    in
    let bad =
      List.exists
        (fun (s : Elf.segment) -> s.vaddr - Elf.data_space < Asm.Image.heap_base)
        data
    in
    if bad then
      Error
        (Bad_layout
           { what =
               Printf.sprintf "data segment below the heap base (0x%04x)"
                 Asm.Image.heap_base })
    else
      let data_size = if data = [] then default_data_size else data_size in
      of_segments ~name ~entry:(entry / 2) ~text_bytes ~data_size byte_segments

let to_hex ?(base = 0) (words : int array) : string =
  let bytes = Bytes.create (2 * Array.length words) in
  Array.iteri
    (fun i w ->
      Bytes.set_uint8 bytes (2 * i) (w land 0xFF);
      Bytes.set_uint8 bytes ((2 * i) + 1) ((w lsr 8) land 0xFF))
    words;
  Hex.encode [ (2 * base, bytes) ]
