(* Stack relocation (Section IV-C3, Figure 3).

   The application area is a sequence of contiguous task regions
   [p_l, p_u), each holding a fixed heap [p_l, p_h) at the bottom and a
   stack at the top; the free stack gap of a region is [p_h, sp] (SP is
   an empty-descending physical stack pointer).

   To give delta bytes from a donor to a needy task, the bytes between
   the two free gaps slide toward the donor, shrinking the donor's gap
   and widening the needy's.  Because applications address memory
   logically, only the physical bookkeeping (bounds, SPs, displacement
   cells) changes — the paper's key claim.

   This module is pure region arithmetic over an abstract [move]
   callback, so the algorithm is testable without a machine. *)

type region = {
  id : int;
  mutable p_l : int;
  mutable p_h : int;
  mutable p_u : int;
  mutable sp : int;  (** physical SP: live for the running task, else saved *)
}

let gap r = r.sp - r.p_h + 1

(** Free stack bytes a region could give away while keeping [keep] in
    hand for its own trampolines. *)
let surplus ~keep r = gap r - keep

let by_address regions = List.sort (fun a b -> compare a.p_l b.p_l) regions

(* Shift a region's position (and its SP) by [delta] (can be negative). *)
let shift_region r delta =
  r.p_l <- r.p_l + delta;
  r.p_h <- r.p_h + delta;
  r.p_u <- r.p_u + delta;
  r.sp <- r.sp + delta

(** Move [delta] bytes of stack space from [donor] to [needy].
    [move ~src ~dst ~len] must behave like memmove.  Returns the number
    of bytes physically moved. *)
let donate ~regions ~donor ~needy ~delta ~move =
  if delta <= 0 then invalid_arg "donate: non-positive delta";
  if surplus ~keep:0 donor < delta then invalid_arg "donate: donor too small";
  let sorted = by_address regions in
  let between lo hi r = r.p_l > lo && r.p_u <= hi in
  if donor.p_l >= needy.p_u then begin
    (* Donor above: the block [needy stack contents .. donor heap] slides
       up by delta. *)
    let src = needy.sp + 1 in
    let len = donor.p_h - src in
    move ~src ~dst:(src + delta) ~len;
    (* Needy: stack contents moved up; its region top rises. *)
    needy.p_u <- needy.p_u + delta;
    needy.sp <- needy.sp + delta;
    (* Whole regions strictly between the two shift up. *)
    List.iter
      (fun r ->
        if r != donor && r != needy && between needy.p_l donor.p_l r then
          shift_region r delta)
      sorted;
    (* Donor: heap slides up, stack stays. *)
    donor.p_l <- donor.p_l + delta;
    donor.p_h <- donor.p_h + delta;
    len
  end
  else begin
    (* Donor below: the block [donor stack contents .. needy heap] slides
       down by delta. *)
    let src = donor.sp + 1 in
    let len = needy.p_h - src in
    move ~src ~dst:(src - delta) ~len;
    donor.p_u <- donor.p_u - delta;
    donor.sp <- donor.sp - delta;
    List.iter
      (fun r ->
        if r != donor && r != needy && between donor.p_l needy.p_l r then
          shift_region r (-delta))
      sorted;
    needy.p_l <- needy.p_l - delta;
    needy.p_h <- needy.p_h - delta;
    len
  end

(** Pick the donor with the largest surplus (the paper's policy),
    excluding [needy]; it will give half its surplus, at least
    [min_grant] bytes.  Returns [None] when no donor can help. *)
let pick_donor ~keep ~min_grant ~regions ~needy =
  let best =
    List.fold_left
      (fun acc r ->
        if r == needy then acc
        else
          let s = surplus ~keep r in
          match acc with
          | Some (_, sb) when sb >= s -> acc
          | _ when s > 0 -> Some (r, s)
          | _ -> acc)
      None regions
  in
  match best with
  | Some (r, s) when s / 2 >= min_grant -> Some (r, s / 2)
  | _ -> None

(** Absorb the hole [lo, hi) left by a terminated task into a
    neighbouring region's stack gap.  Returns bytes moved. *)
let absorb_hole ~regions ~lo ~hi ~move =
  let size = hi - lo in
  if size <= 0 then 0
  else
    let sorted = by_address regions in
    let left = List.filter (fun r -> r.p_u <= lo) sorted in
    match List.rev left with
    | r :: _ when r.p_u = lo ->
      (* Slide the left neighbour's stack contents up over the hole. *)
      let src = r.sp + 1 in
      let len = r.p_u - src in
      move ~src ~dst:(src + size) ~len;
      r.p_u <- r.p_u + size;
      r.sp <- r.sp + size;
      len
    | _ ->
      (match List.find_opt (fun r -> r.p_l = hi) sorted with
       | Some r ->
         (* Slide the right neighbour's heap down over the hole. *)
         let len = r.p_h - r.p_l in
         move ~src:r.p_l ~dst:(r.p_l - size) ~len;
         r.p_l <- r.p_l - size;
         r.p_h <- r.p_h - size;
         len
       | None -> 0)
