test/test_programs.ml: Alcotest Asm Fmt Kernel List Machine Programs Workloads
