lib/workloads/ablation.ml: Asm Avr Fmt Format Kernel List Machine Programs Rewriter
