test/test_asm.ml: Alcotest Array Asm Avr Fmt List Machine QCheck QCheck_alcotest
