(** Deterministic topology generators for fleet-scale networks.

    Each generator returns a plain edge list — each undirected edge once
    as [(a, b)] with [a < b], in ascending lexicographic order — that
    [Net.link_all] turns into bidirectional links.  Generators are pure
    and seeded: the same parameters always produce the same graph, so
    the fleet determinism contract extends to the topology. *)

type edge = int * int

(** A chain 0-1-2-...-(n-1). *)
val line : int -> edge list

(** A 4-neighbour lattice of [n] nodes, row-major in [cols] columns
    (last row may be ragged).  Raises [Invalid_argument] when
    [cols <= 0]. *)
val grid : cols:int -> int -> edge list

(** [random_geometric ~seed ~radius n] scatters [n] nodes on a
    1000 x 1000 integer square with a seeded LCG and connects every
    pair within Euclidean distance [radius] (same units) — the classic
    unit-disk deployment model.  Deterministic per [seed] (default 1). *)
val random_geometric : ?seed:int -> radius:int -> int -> edge list

(** [2 * length]: handy when sizing neighbour tables. *)
val degree_sum : edge list -> int
