test/test_differential.ml: Alcotest Array Asm Avr Fmt Kernel List Machine Printf QCheck QCheck_alcotest Tkernel Workloads
