(* Deterministic adversarial attack campaigns: Harvard code-injection
   workloads delivered through the radio, with a cross-kernel
   containment matrix.

   The attacker model is Francillon & Castelluccia's remote code
   injection on Harvard-architecture AVR motes (CCS'08,
   arXiv:0901.3482): the only attacker capability is sending radio
   packets to a mote running a vulnerable frame receiver
   ({!Programs.Rx_vuln}).  Three escalating packet classes:

   - {b Flood}: an oversized frame whose unchecked copy walks far past
     the receive buffer — the blunt stack smash.
   - {b Clobber}: a frame of exactly [buf_bytes + 4] bytes whose last
     four bytes replace the handler's saved frame pointer and return
     address — a remote program-counter write aimed at an existing code
     address (return-to-foreign-code; on a Harvard MCU the attacker
     cannot execute the payload itself, only reuse resident code).
   - {b Chain}: the paper's gadget bootstrap — the clobbered return
     re-enters the handler's copy loop ([rf_ldx]) with a forged frame
     pointer, turning the receiver into a write-anywhere primitive fed
     by the rest of the radio stream (a fake stack frame + gadget
     chain, two stages deep).

   The same logical attack is aimed at four kernels: SenSmart
   (naturalized tasks, logical addressing), t-kernel (kernel-only
   protection, single app), LiteOS-like threads (fixed physical
   partitions), and the Maté-like bytecode VM.  Per-system packet bytes
   differ only in the embedded addresses, each computed from that
   system's own symbol/rewrite tables.

   Each trial runs the victim next to an untouched bystander
   ({!Programs.Rx_vuln.guard} where the kernel supports multitasking),
   delivers the attack volley, then probes for containment: heap canary
   sweep, sampled PC-outside-task-text, post-attack benign-frame
   liveness, sibling progress, kill-reason classification, and (for
   SenSmart) the kernel's structural invariants.  Probes land in the
   campaign's trace as {!Trace.Probe} events, and the verdict lattice
   [Contained < Degraded < Escaped < Bricked] is computed from probe
   outcomes only — never from knowledge of the attack class.

   Everything is deterministic: packets derive from a splitmix-mixed
   seed, delivery rides {!Fault.Radio_frame} injections (SenSmart) or
   direct peripheral queueing at fixed absolute cycles, and all
   engines advance by absolute cycle horizons, so a campaign is
   byte-identical across execution tiers and network domain counts. *)

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

type verdict = Contained | Degraded | Escaped | Bricked

let verdict_rank = function
  | Contained -> 0
  | Degraded -> 1
  | Escaped -> 2
  | Bricked -> 3

let verdict_name = function
  | Contained -> "contained"
  | Degraded -> "degraded"
  | Escaped -> "escaped"
  | Bricked -> "bricked"

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_name v)

let worst a b = if verdict_rank a >= verdict_rank b then a else b

type cls = Flood | Clobber | Chain

let cls_name = function
  | Flood -> "flood"
  | Clobber -> "clobber"
  | Chain -> "chain"

let all_classes = [ Flood; Clobber; Chain ]
let all_systems = [ "sensmart"; "tkernel"; "liteos"; "matevm" ]

(* ------------------------------------------------------------------ *)
(* Seeded determinism (splitmix64, the same generator family as
   [Fault.Plan.random]; no [Random] state involved).                   *)

let splitmix x =
  let z = (x + 0x9E3779B9) land max_int in
  let z = (z lxor (z lsr 16)) * 0x45D9F3B land max_int in
  let z = (z lxor (z lsr 13)) * 0x45D9F3B land max_int in
  (z lxor (z lsr 16)) land 0x3FFFFFFF

type rng = { mutable state : int }

let rng_of seed = { state = splitmix seed }

let next r =
  r.state <- splitmix r.state;
  r.state

let next_byte r = next r land 0xFF

(* ------------------------------------------------------------------ *)
(* Packet crafting                                                     *)

module Packet = struct
  let sync = Programs.Rx_vuln.sync_byte
  let buf = Programs.Rx_vuln.buf_bytes

  (** [frame payload] — sync byte, length, payload. *)
  let frame payload = sync :: (List.length payload land 0xFF) :: payload

  (** A well-formed 4-byte frame, the post-attack liveness probe. *)
  let benign = frame [ 0x11; 0x22; 0x33; 0x44 ]

  (** Oversized frame: [len] filler bytes against an 8-byte buffer. *)
  let flood ~len ~fill = frame (List.init len fill)

  (** Exactly overwrite the handler's saved Y and return address.
      [y] and [ret] are in the target system's own coordinates ([ret]
      is a flash {e word} address, as RET pops it). *)
  let clobber ?(extra = []) ~y ~ret ~fill () =
    frame
      (List.init buf fill
      @ [ (y lsr 8) land 0xFF; y land 0xFF;
          (ret lsr 8) land 0xFF; ret land 0xFF ]
      @ extra)

  (** The gadget bootstrap: return into [rf_ldx] with the forged frame
      pointer aimed one below [target], so the copy loop re-reads a
      length byte and writes [payload] at [target..] straight off the
      radio. *)
  let chain ~target ~rf_ldx ~payload ~fill =
    clobber ~y:((target - 1) land 0xFFFF) ~ret:rf_ldx ~fill
      ~extra:((List.length payload land 0xFF) :: payload)
      ()

  let pp_bytes fmt bytes =
    List.iter (fun b -> Format.fprintf fmt "%02x" (b land 0xFF)) bytes
end

(* ------------------------------------------------------------------ *)
(* Trial schedule (absolute cycles, identical for every system)        *)

let t_attack = 200_000
let t_benign = 1_600_000
let t_end = 2_600_000
let sample_step = 4_000
let sample_until = t_attack + 200_000
let recovery_budget = 1_200_000

let sample_grid =
  let rec grid c acc =
    if c > sample_until then List.rev acc else grid (c + sample_step) (c :: acc)
  in
  grid (t_attack + sample_step) [] @ [ t_benign - 1; t_end ]

(* ------------------------------------------------------------------ *)
(* Probes and trials                                                   *)

type probe = { pname : string; detail : string; ok : bool }

type trial = {
  system : string;
  cls : cls;
  index : int;
  packet : int list;
  verdict : verdict;
  probes : probe list;  (** every probe consulted, fired or clean *)
  frames : int;  (** the receiver's frame counter at [t_end] *)
  responsive : bool;  (** processed the post-attack benign frame *)
  recovery_cycles : int option;
      (** cycles from watchdog reboot to restored service (SenSmart
          trials whose verdict was not [Contained]) *)
  cycles : int;  (** the subject's clock when the trial ended *)
}

(* Probe bookkeeping: collect the outcome list and mirror every probe
   into the campaign sink as a Trace.Probe event. *)
let mk_probe trace ~mote ~at acc ~name ~detail ~ok =
  Trace.emit trace ~mote ~at (Trace.Probe { name; detail });
  acc := { pname = name; detail; ok } :: !acc

(** The verdict, from probe outcomes only (no attack-class knowledge):
    - [Bricked]: the machine halted wildly, or nothing on the mote is
      alive any more;
    - [Escaped]: damage outside the attacked task (canary, sibling);
    - [Degraded]: foreign/wild execution was observed, an unexplained
      kill happened, or the receiver is an unresponsive zombie while
      the rest of the mote survives;
    - [Contained]: the mote still serves — either the receiver shrugged
      the volley off, or the kernel's protection killed it cleanly and
      everyone else is intact. *)
let classify ~halted_wild ~sibling_damage ~hijack ~responsive ~protection_kill
    ~kernel_alive ~sibling_alive =
  if halted_wild then Bricked
  else if sibling_damage then Escaped
  else if hijack then Degraded
  else if responsive then Contained
  else if protection_kill && kernel_alive then Contained
  else if sibling_alive then Degraded
  else Bricked

(* Symbol helpers. *)
let text_addr img name =
  match Asm.Image.find_symbol img name with
  | Some (Asm.Image.Text w) -> w
  | _ -> invalid_arg (Printf.sprintf "attack: no text label %S" name)

let data_addr img name =
  match Asm.Image.find_symbol img name with
  | Some (Asm.Image.Data a) -> a
  | _ -> invalid_arg (Printf.sprintf "attack: no data symbol %S" name)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let is_protection_reason r =
  contains r "protection" || contains r "overflow" || contains r "kernel-area"
  || contains r "bounds"

(* ------------------------------------------------------------------ *)
(* SenSmart driver                                                     *)

let nat_label (t : Kernel.Task.t) name =
  Rewriter.Shift_table.to_naturalized t.nat.shift (text_addr t.nat.source name)

let nat_span (t : Kernel.Task.t) =
  (t.nat.base, t.nat.base + Rewriter.Naturalized.total_words t.nat)

let in_span pc (lo, hi) = pc >= lo && pc < hi

(** One SenSmart trial: receiver + guard under the kernel, packets
    delivered through {!Fault.run_kernel} with [Radio_frame]
    injections, the engine re-entered on the sampling grid so the PC
    probe can look between segments.  [packets] is a list of
    [(at, bytes)] — campaigns pass one attack packet; the CLI's
    [--packet] replay passes arbitrary ones. *)
let run_sensmart ?(tier = 1) ~trace ~mote ~packets () =
  let rx_img = Asm.Assembler.assemble (Programs.Rx_vuln.receiver ()) in
  let gd_img = Asm.Assembler.assemble (Programs.Rx_vuln.guard ()) in
  let k = Kernel.boot ~trace ~mote [ rx_img; gd_img ] in
  k.m.tier <- tier;
  let plan =
    Fault.Plan.make
      (List.map
         (fun (at, bytes) ->
           { Fault.at; mote; kind = Fault.Radio_frame { bytes } })
         (packets @ [ (t_benign, Packet.benign) ]))
  in
  let rx = Kernel.find_task k 0 and gd = Kernel.find_task k 1 in
  let spans = List.map nat_span [ rx; gd ] in
  let probes = ref [] in
  let probe = mk_probe trace ~mote in
  let hijack = ref None in
  let frames_before = ref 0 and progress_before = ref 0 in
  let last_stop = ref Machine.Cpu.Out_of_fuel in
  List.iter
    (fun g ->
      last_stop := Fault.run_kernel ~max_cycles:g ~plan k;
      (* PC probe: the current task executing outside its own
         naturalized text (wild flash, or a sibling's code). *)
      (match (!hijack, k.current) with
       | None, Some t when (match t.status with Exited _ -> true | _ -> false)
         -> ()
       | None, Some t ->
         let pc = k.m.pc in
         if not (in_span pc (nat_span t)) then
           let where =
             if List.exists (in_span pc) spans then "a sibling's text"
             else "unmapped flash"
           in
           hijack :=
             Some
               (Printf.sprintf "task %d at pc 0x%04x in %s (cycle %d)" t.id pc
                  where k.m.cycles)
       | _ -> ());
      if g = t_benign - 1 then begin
        frames_before := Kernel.read_var k 0 "frames";
        progress_before := Kernel.read_var k 1 "progress"
      end)
    sample_grid;
  let at = k.m.cycles in
  (match !hijack with
   | Some detail -> probe ~at probes ~name:"pc_bounds" ~detail ~ok:false
   | None ->
     probe ~at probes ~name:"pc_bounds" ~detail:"all samples in-text" ~ok:true);
  (* Canary sweep over the guard's heap (logical read: relocation-proof). *)
  let canary_base = data_addr gd_img "canary" in
  let bad = ref 0 in
  for i = 0 to Programs.Rx_vuln.canary_bytes - 1 do
    if Kernel.heap_byte k 1 (canary_base + i) <> Programs.Rx_vuln.canary_fill
    then incr bad
  done;
  probe ~at probes ~name:"canary"
    ~detail:
      (if !bad = 0 then "guard canary intact"
       else Printf.sprintf "guard canary: %d byte(s) clobbered" !bad)
    ~ok:(!bad = 0);
  (* Structural invariants. *)
  let invariant_bad =
    match Kernel.check_invariants k with
    | () -> None
    | exception Failure m -> Some m
  in
  probe ~at probes ~name:"invariants"
    ~detail:(Option.value invariant_bad ~default:"region invariants hold")
    ~ok:(invariant_bad = None);
  (* Liveness: did the benign probe frame advance the frame counter? *)
  let frames = Kernel.read_var k 0 "frames" in
  let responsive = frames > !frames_before in
  probe ~at probes ~name:"liveness"
    ~detail:
      (Printf.sprintf "receiver frames %d -> %d after benign probe"
         !frames_before frames)
    ~ok:responsive;
  (* Sibling progress. *)
  let progress = Kernel.read_var k 1 "progress" in
  let sibling_alive =
    progress > !progress_before
    && (match gd.status with Exited _ -> false | _ -> true)
  in
  probe ~at probes ~name:"sibling"
    ~detail:
      (Printf.sprintf "guard progress %d -> %d" !progress_before progress)
    ~ok:sibling_alive;
  (* Kill-reason classification from the kernel's own event stream. *)
  let kills =
    List.filter_map
      (fun (n, r) -> if r = "exit" then None else Some (n, r))
      (Kernel.outcomes k)
  in
  let protection_kill =
    List.exists (fun (_, r) -> is_protection_reason r) kills
  in
  let unexplained =
    List.filter (fun (_, r) -> not (is_protection_reason r)) kills
  in
  probe ~at probes ~name:"kill"
    ~detail:
      (match kills with
       | [] -> "no task killed"
       | l ->
         String.concat "; "
           (List.map (fun (n, r) -> Printf.sprintf "%s: %s" n r) l))
    ~ok:(unexplained = []);
  let halted_wild =
    match !last_stop with
    | Machine.Cpu.Halted (Machine.Cpu.Fault _)
    | Machine.Cpu.Halted (Machine.Cpu.Invalid_opcode _) ->
      (* A halt the kernel could not pin on a live task. *)
      true
    | _ -> false
  in
  let verdict =
    classify ~halted_wild
      ~sibling_damage:(!bad > 0)
      ~hijack:(!hijack <> None || invariant_bad <> None)
      ~responsive ~protection_kill
      ~kernel_alive:(not halted_wild)
      ~sibling_alive
  in
  (* Graceful degradation: when the service was damaged, compose with
     the watchdog and measure time back to a serving receiver. *)
  let recovery_cycles =
    if verdict = Contained then None
    else begin
      let t_reboot = k.m.cycles in
      Kernel.watchdog_reboot k;
      Fault.inject ~trace k
        { Fault.at = 0; mote; kind = Fault.Radio_frame { bytes = Packet.benign } };
      let rec seek horizon =
        if horizon > t_reboot + recovery_budget then None
        else begin
          ignore (Kernel.run ~max_cycles:horizon k);
          if (match (Kernel.find_task k 0).status with
              | Exited _ -> false
              | _ -> true)
             && Kernel.read_var k 0 "frames" > 0
          then Some (k.m.cycles - t_reboot)
          else seek (horizon + 50_000)
        end
      in
      let r = seek (t_reboot + 50_000) in
      probe ~at:k.m.cycles probes ~name:"recovery"
        ~detail:
          (match r with
           | Some c -> Printf.sprintf "service restored %d cycles after reboot" c
           | None -> "service not restored within recovery budget")
        ~ok:(r <> None);
      r
    end
  in
  (verdict, List.rev !probes, frames, responsive, recovery_cycles, k.m.cycles)

(* ------------------------------------------------------------------ *)
(* t-kernel driver                                                     *)

(* Kernel-area canary for the t-kernel trial: bytes the rewritten app
   must never reach (the protection line is [Kcells.app_limit]). *)
let tk_canary_base = 0x10C0
let tk_canary_bytes = 16

let tk_sp_top = Rewriter.Kcells.app_limit - 1

let run_tkernel ?(tier = 1) ~trace ~mote ~packet () =
  let src =
    Asm.Assembler.assemble (Programs.Rx_vuln.receiver ~sp_top:tk_sp_top ())
  in
  let rw = Tkernel.Rewrite.run src in
  let s = Tkernel.Run.start rw in
  let m = s.Tkernel.Run.machine in
  m.tier <- tier;
  for i = 0 to tk_canary_bytes - 1 do
    Machine.Cpu.write8 m (tk_canary_base + i) Programs.Rx_vuln.canary_fill
  done;
  let inject at bytes =
    List.iteri
      (fun i b ->
        Machine.Io.inject_rx m.io ~cycles:(max at m.cycles)
          ~after:((i + 1) * Machine.Io.radio_byte_cycles)
          b)
      bytes
  in
  let text_words = Array.length rw.image.words in
  let probes = ref [] in
  let probe = mk_probe trace ~mote in
  let hijack = ref None in
  let frames_before = ref 0 in
  let halt = ref None in
  let frames_of () = Machine.Cpu.read16 m (data_addr src "frames") in
  List.iter
    (fun g ->
      if g = t_attack + sample_step then inject t_attack packet;
      if g = t_benign then inject t_benign Packet.benign;
      if !halt = None then halt := Tkernel.Run.continue_ ~max_cycles:g s;
      (match !hijack with
       | None when !halt = None && m.pc >= text_words ->
         hijack :=
           Some
             (Printf.sprintf "pc 0x%04x beyond rewritten text (cycle %d)" m.pc
                m.cycles)
       | _ -> ());
      if g = t_benign - 1 then frames_before := frames_of ())
    (List.sort_uniq compare
       ((t_attack + sample_step) :: t_benign :: sample_grid));
  let at = m.cycles in
  (match !hijack with
   | Some detail -> probe ~at probes ~name:"pc_bounds" ~detail ~ok:false
   | None ->
     probe ~at probes ~name:"pc_bounds" ~detail:"all samples in-text" ~ok:true);
  let bad = ref 0 in
  for i = 0 to tk_canary_bytes - 1 do
    if Machine.Cpu.read8 m (tk_canary_base + i) <> Programs.Rx_vuln.canary_fill
    then incr bad
  done;
  probe ~at probes ~name:"canary"
    ~detail:
      (if !bad = 0 then "kernel-area canary intact"
       else Printf.sprintf "kernel-area canary: %d byte(s) clobbered" !bad)
    ~ok:(!bad = 0);
  let frames = frames_of () in
  let responsive = !halt = None && frames > !frames_before in
  probe ~at probes ~name:"liveness"
    ~detail:
      (Printf.sprintf "app frames %d -> %d after benign probe" !frames_before
         frames)
    ~ok:responsive;
  let kill_reason =
    match !halt with
    | Some (Machine.Cpu.Fault r) -> Some r
    | Some (Machine.Cpu.Invalid_opcode (pc, w)) ->
      Some (Printf.sprintf "invalid opcode 0x%04x at 0x%04x" w pc)
    | Some Machine.Cpu.Break_hit | None -> None
  in
  let protection_kill =
    match kill_reason with Some r -> is_protection_reason r | None -> false
  in
  probe ~at probes ~name:"kill"
    ~detail:(Option.value kill_reason ~default:"app still running")
    ~ok:(kill_reason = None || protection_kill);
  let halted_wild = kill_reason <> None && not protection_kill in
  let verdict =
    classify ~halted_wild
      ~sibling_damage:(!bad > 0)
      ~hijack:(!hijack <> None)
      ~responsive ~protection_kill
      ~kernel_alive:(!halt = None)
      ~sibling_alive:false
  in
  (verdict, List.rev !probes, frames, responsive, None, m.cycles)

(* ------------------------------------------------------------------ *)
(* LiteOS driver                                                       *)

let run_liteos ?(tier = 1) ~trace ~mote ~mk_packet () =
  let l =
    Liteos.boot
      [ ("rx_vuln", fun ~data_base:_ ~sp_top -> Programs.Rx_vuln.receiver ~sp_top ());
        ("guard", fun ~data_base:_ ~sp_top -> Programs.Rx_vuln.guard ~sp_top ()) ]
  in
  l.m.tier <- tier;
  let rx = List.nth l.threads 0 and gd = List.nth l.threads 1 in
  (* Per-thread text spans: symbols are absolute (each thread is
     assembled against its private flash base). *)
  let span (th : Liteos.thread) =
    let lo = text_addr th.img "start" in
    (lo, lo + th.img.text_words)
  in
  let spans = [ span rx; span gd ] in
  let packet = mk_packet ~rx ~gd in
  let inject at bytes =
    List.iteri
      (fun i b ->
        Machine.Io.inject_rx l.m.io ~cycles:(max at l.m.cycles)
          ~after:((i + 1) * Machine.Io.radio_byte_cycles)
          b)
      bytes
  in
  let probes = ref [] in
  let probe = mk_probe trace ~mote in
  let hijack = ref None in
  let frames_before = ref 0 and progress_before = ref 0 in
  let last_stop = ref Machine.Cpu.Out_of_fuel in
  List.iter
    (fun g ->
      if g = t_attack + sample_step then inject t_attack packet;
      if g = t_benign then inject t_benign Packet.benign;
      (match !last_stop with
       | Machine.Cpu.Halted _ -> ()
       | _ -> last_stop := Liteos.run ~max_cycles:g l);
      (match (!hijack, l.current) with
       | None, Some th
         when (match th.status with Liteos.Dead _ -> false | _ -> true) ->
         let pc = l.m.pc in
         if not (in_span pc (span th)) then
           let where =
             if List.exists (in_span pc) spans then "a sibling's text"
             else "unmapped flash"
           in
           hijack :=
             Some
               (Printf.sprintf "thread %d at pc 0x%04x in %s (cycle %d)" th.id
                  pc where l.m.cycles)
       | _ -> ());
      if g = t_benign - 1 then begin
        frames_before := Liteos.read_var l 0 "frames";
        progress_before := Liteos.read_var l 1 "progress"
      end)
    (List.sort_uniq compare
       ((t_attack + sample_step) :: t_benign :: sample_grid));
  let at = l.m.cycles in
  (match !hijack with
   | Some detail -> probe ~at probes ~name:"pc_bounds" ~detail ~ok:false
   | None ->
     probe ~at probes ~name:"pc_bounds" ~detail:"all samples in-text" ~ok:true);
  (* Canary sweep: the guard's heap is a fixed physical window right
     above the receiver's stack partition — exactly what a wild
     physical write crosses into. *)
  let canary_base = data_addr gd.img "canary" in
  let bad = ref 0 in
  for i = 0 to Programs.Rx_vuln.canary_bytes - 1 do
    if Machine.Cpu.read8 l.m (canary_base + i) <> Programs.Rx_vuln.canary_fill
    then incr bad
  done;
  probe ~at probes ~name:"canary"
    ~detail:
      (if !bad = 0 then "guard canary intact"
       else Printf.sprintf "guard canary: %d byte(s) clobbered" !bad)
    ~ok:(!bad = 0);
  let frames = Liteos.read_var l 0 "frames" in
  let responsive = frames > !frames_before in
  probe ~at probes ~name:"liveness"
    ~detail:
      (Printf.sprintf "receiver frames %d -> %d after benign probe"
         !frames_before frames)
    ~ok:responsive;
  let progress = Liteos.read_var l 1 "progress" in
  let sibling_alive =
    progress > !progress_before
    && (match gd.status with Liteos.Dead _ -> false | _ -> true)
  in
  probe ~at probes ~name:"sibling"
    ~detail:
      (Printf.sprintf "guard progress %d -> %d" !progress_before progress)
    ~ok:sibling_alive;
  let kills =
    List.filter (fun (_, r) -> r <> "exit") (Liteos.casualties l)
  in
  let protection_kill =
    List.exists (fun (_, r) -> is_protection_reason r) kills
  in
  let unexplained =
    List.filter (fun (_, r) -> not (is_protection_reason r)) kills
  in
  probe ~at probes ~name:"kill"
    ~detail:
      (match kills with
       | [] -> "no thread killed"
       | ks ->
         String.concat "; "
           (List.map (fun (n, r) -> Printf.sprintf "%s: %s" n r) ks))
    ~ok:(unexplained = []);
  let halted_wild =
    match !last_stop with
    | Machine.Cpu.Halted Machine.Cpu.Break_hit -> false
    | Machine.Cpu.Halted _ -> true
    | _ -> false
  in
  let verdict =
    classify ~halted_wild
      ~sibling_damage:(!bad > 0)
      ~hijack:(!hijack <> None)
      ~responsive ~protection_kill
      ~kernel_alive:(not halted_wild)
      ~sibling_alive
  in
  (verdict, List.rev !probes, frames, responsive, None, l.m.cycles)

(* ------------------------------------------------------------------ *)
(* Maté VM driver                                                      *)

let run_matevm ~trace ~mote ~packet () =
  let vm =
    Matevm.create
      (Matevm.rx_capsule ~sync:Packet.sync ~canary:Programs.Rx_vuln.canary_fill)
  in
  let inject bytes = List.iter (Matevm.inject_rx vm) bytes in
  let frames_before = ref 0 in
  let probes = ref [] in
  let probe = mk_probe trace ~mote in
  List.iter
    (fun g ->
      if g = t_attack + sample_step then inject packet;
      if g = t_benign then inject Packet.benign;
      if not vm.halted then ignore (Matevm.run ~max_cycles:g vm);
      if g = t_benign - 1 then frames_before := vm.heap.(Matevm.rx_frames_slot))
    (List.sort_uniq compare
       ((t_attack + sample_step) :: t_benign :: sample_grid));
  let at = vm.cycles in
  let bad = ref 0 in
  for i = 0 to Matevm.rx_canary_slots - 1 do
    if vm.heap.(Matevm.rx_canary_base + i) <> Programs.Rx_vuln.canary_fill then
      incr bad
  done;
  probe ~at probes ~name:"canary"
    ~detail:
      (if !bad = 0 then "heap canary intact"
       else Printf.sprintf "heap canary: %d slot(s) clobbered" !bad)
    ~ok:(!bad = 0);
  let frames = vm.heap.(Matevm.rx_frames_slot) in
  let responsive = (not vm.halted) && frames > !frames_before in
  probe ~at probes ~name:"liveness"
    ~detail:
      (Printf.sprintf "capsule frames %d -> %d after benign probe"
         !frames_before frames)
    ~ok:responsive;
  let protection_kill = vm.trap <> None in
  probe ~at probes ~name:"kill"
    ~detail:
      (match vm.trap with
       | Some r -> r
       | None -> if vm.halted then "capsule halted" else "capsule running")
    ~ok:(vm.trap <> None || not vm.halted);
  let verdict =
    classify ~halted_wild:false
      ~sibling_damage:(!bad > 0)
      ~hijack:false ~responsive ~protection_kill ~kernel_alive:true
      ~sibling_alive:false
  in
  (verdict, List.rev !probes, frames, responsive, None, vm.cycles)

(* ------------------------------------------------------------------ *)
(* Per-system packet selection                                         *)

(* The attacker aims the same logical attack everywhere; only embedded
   addresses differ, each computed from the target system's own
   tables.  The fill bytes and flood length come from the trial rng so
   campaigns sweep payload variety deterministically. *)

let flood_packet rng =
  let len = 64 + (next rng mod 150) in
  Packet.flood ~len ~fill:(fun _ -> next_byte rng)

(* SenSmart: aim the clobber at the guard's naturalized entry (reuse a
   sibling's resident code) and the chain at the kernel cells. *)
let sensmart_packet ~cls ~rng (k : Kernel.t) =
  let rx = Kernel.find_task k 0 and gd = Kernel.find_task k 1 in
  match cls with
  | Flood -> flood_packet rng
  | Clobber ->
    Packet.clobber ~y:0x10F3 ~ret:gd.nat.entry ~fill:(fun _ -> next_byte rng) ()
  | Chain ->
    Packet.chain
      ~target:Rewriter.Kcells.cells_base
      ~rf_ldx:(nat_label rx "rf_ldx")
      ~payload:(List.init 6 (fun _ -> next_byte rng))
      ~fill:(fun _ -> next_byte rng)

let tkernel_packet ~cls ~rng (rw : Tkernel.Rewrite.t) =
  match cls with
  | Flood -> flood_packet rng
  | Clobber ->
    (* No sibling code to reuse: a blind return into unmapped flash. *)
    Packet.clobber ~y:(tk_sp_top - 12) ~ret:0x6000
      ~fill:(fun _ -> next_byte rng)
      ()
  | Chain ->
    let rf_ldx =
      match Hashtbl.find_opt rw.addr_map (text_addr rw.source "rf_ldx") with
      | Some a -> a
      | None -> text_addr rw.source "rf_ldx"
    in
    Packet.chain ~target:Rewriter.Kcells.cells_base ~rf_ldx
      ~payload:(List.init 6 (fun _ -> next_byte rng))
      ~fill:(fun _ -> next_byte rng)

let liteos_packet ~cls ~rng ~(rx : Liteos.thread) ~(gd : Liteos.thread) =
  match cls with
  | Flood -> flood_packet rng
  | Clobber ->
    Packet.clobber ~y:(rx.stack_top - 12) ~ret:gd.img.entry
      ~fill:(fun _ -> next_byte rng)
      ()
  | Chain ->
    (* Physical addressing: aim the write-anywhere at the guard's
       canary, straight across the partition boundary. *)
    Packet.chain
      ~target:(data_addr gd.img "canary")
      ~rf_ldx:(text_addr rx.img "rf_ldx")
      ~payload:(List.init 6 (fun _ -> next_byte rng))
      ~fill:(fun _ -> next_byte rng)

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

type matrix = {
  seed : int;
  trials : trial list;
  trace : Trace.t;
      (** probe events for every trial plus the aggregated ["attack.*"]
          counters *)
}

let probe_names =
  [ "pc_bounds"; "canary"; "invariants"; "liveness"; "sibling"; "kill";
    "recovery" ]

let seed_counters trace systems =
  Trace.set_counter trace "attack.trials" 0;
  List.iter
    (fun v -> Trace.set_counter trace ("attack." ^ verdict_name v) 0)
    [ Contained; Degraded; Escaped; Bricked ];
  List.iter
    (fun p -> Trace.set_counter trace ("attack.probe." ^ p) 0)
    probe_names;
  Trace.set_counter trace "attack.recovered" 0;
  Trace.set_counter trace "attack.recovery_cycles_total" 0;
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          Trace.set_counter trace
            (Printf.sprintf "attack.%s.%s" s (cls_name c))
            0)
        all_classes)
    systems

let run_trial ?(tier = 1) ~trace ~seed ~system ~cls ~index () =
  let mix =
    splitmix
      (seed
      lxor (Hashtbl.hash (system, cls_name cls) * 0x9E37)
      lxor (index * 0x85EB))
  in
  let rng = rng_of mix in
  let packet = ref [] in
  let verdict, probes, frames, responsive, recovery, cycles =
    match system with
    | "sensmart" ->
      (* The packet needs the booted kernel's tables; craft inside. *)
      let rx_img = Asm.Assembler.assemble (Programs.Rx_vuln.receiver ()) in
      let gd_img = Asm.Assembler.assemble (Programs.Rx_vuln.guard ()) in
      let probe_kernel = Kernel.boot [ rx_img; gd_img ] in
      packet := sensmart_packet ~cls ~rng probe_kernel;
      run_sensmart ~tier ~trace ~mote:index
        ~packets:[ (t_attack, !packet) ]
        ()
    | "tkernel" ->
      let src =
        Asm.Assembler.assemble (Programs.Rx_vuln.receiver ~sp_top:tk_sp_top ())
      in
      let rw = Tkernel.Rewrite.run src in
      packet := tkernel_packet ~cls ~rng rw;
      run_tkernel ~tier ~trace ~mote:index ~packet:!packet ()
    | "liteos" ->
      run_liteos ~tier ~trace ~mote:index
        ~mk_packet:(fun ~rx ~gd ->
          let p = liteos_packet ~cls ~rng ~rx ~gd in
          packet := p;
          p)
        ()
    | "matevm" ->
      (* Address-free: reuse the SenSmart byte stream shape — to the VM
         it is all data. *)
      packet :=
        (match cls with
         | Flood -> flood_packet rng
         | Clobber ->
           Packet.clobber ~y:0x10F3 ~ret:0x0100 ~fill:(fun _ -> next_byte rng) ()
         | Chain ->
           Packet.chain ~target:0x10F0 ~rf_ldx:0x0100
             ~payload:(List.init 6 (fun _ -> next_byte rng))
             ~fill:(fun _ -> next_byte rng));
      run_matevm ~trace ~mote:index ~packet:!packet ()
    | s -> invalid_arg (Printf.sprintf "attack: unknown system %S" s)
  in
  { system; cls; index; packet = !packet; verdict; probes; frames; responsive;
    recovery_cycles = recovery; cycles }

(** Run the full campaign: [trials] seeded packet variants of every
    attack class against every system.  Same arguments, same matrix —
    across execution tiers ([tier]) and on any host. *)
let campaign ?(tier = 1) ?(trials = 2) ?(seed = 1)
    ?(systems = all_systems) () : matrix =
  let trace = Trace.create ~capacity:16384 () in
  seed_counters trace systems;
  let trials_out = ref [] in
  List.iter
    (fun system ->
      List.iter
        (fun cls ->
          for index = 0 to trials - 1 do
            let t = run_trial ~tier ~trace ~seed ~system ~cls ~index () in
            trials_out := t :: !trials_out;
            Trace.incr trace "attack.trials";
            Trace.incr trace ("attack." ^ verdict_name t.verdict);
            List.iter
              (fun p ->
                if not p.ok then Trace.incr trace ("attack.probe." ^ p.pname))
              t.probes;
            (match t.recovery_cycles with
             | Some c ->
               Trace.incr trace "attack.recovered";
               Trace.incr ~by:c trace "attack.recovery_cycles_total"
             | None -> ());
            let key = Printf.sprintf "attack.%s.%s" system (cls_name cls) in
            Trace.set_counter trace key
              (max (Trace.counter trace key) (verdict_rank t.verdict))
          done)
        all_classes)
    systems;
  { seed; trials = List.rev !trials_out; trace }

(** Worst verdict of a (system, class) cell; [None] when untested. *)
let cell m system cls =
  List.fold_left
    (fun acc t ->
      if t.system = system && t.cls = cls then
        Some (match acc with None -> t.verdict | Some v -> worst v t.verdict)
      else acc)
    None m.trials

(** Classes a system fully contained (worst verdict [Contained]). *)
let contained_classes m system =
  List.filter (fun c -> cell m system c = Some Contained) all_classes

let pp_matrix fmt (m : matrix) =
  let systems =
    List.filter
      (fun s -> List.exists (fun t -> t.system = s) m.trials)
      all_systems
  in
  Format.fprintf fmt "attack containment matrix (seed %d, %d trials)@,"
    m.seed (List.length m.trials);
  Format.fprintf fmt "%-10s" "";
  List.iter (fun c -> Format.fprintf fmt " %-10s" (cls_name c)) all_classes;
  Format.pp_print_newline fmt ();
  List.iter
    (fun s ->
      Format.fprintf fmt "%-10s" s;
      List.iter
        (fun c ->
          Format.fprintf fmt " %-10s"
            (match cell m s c with
             | Some v -> verdict_name v
             | None -> "-"))
        all_classes;
      Format.pp_print_newline fmt ())
    systems;
  List.iter
    (fun (t : trial) ->
      Format.fprintf fmt "  %s/%s#%d: %a (frames=%d%s%s)@," t.system
        (cls_name t.cls) t.index pp_verdict t.verdict t.frames
        (if t.responsive then ", responsive" else ", unresponsive")
        (match t.recovery_cycles with
         | Some c -> Printf.sprintf ", recovered in %d cycles" c
         | None -> "");
      List.iter
        (fun p ->
          if not p.ok then
            Format.fprintf fmt "    ! %s: %s@," p.pname p.detail)
        t.probes)
    m.trials

(* ------------------------------------------------------------------ *)
(* Raw-packet replay (the CLI's --packet)                              *)

(** Replay explicit raw packets against the SenSmart receiver+guard
    pair: packet [i] is delivered at [t_attack + i * spacing], the
    benign liveness probe and the full probe battery run as in a
    campaign trial. *)
let replay ?(tier = 1) ?(spacing = 150_000) packets : trial * Trace.t =
  let trace = Trace.create ~capacity:16384 () in
  let timed = List.mapi (fun i p -> (t_attack + (i * spacing), p)) packets in
  let verdict, probes, frames, responsive, recovery, cycles =
    run_sensmart ~tier ~trace ~mote:0 ~packets:timed ()
  in
  ( { system = "sensmart"; cls = Flood; index = 0;
      packet = List.concat packets; verdict; probes; frames; responsive;
      recovery_cycles = recovery; cycles },
    trace )

(** Parse a hex packet spec ("a7 0c 01..." — spaces optional), reusing
    the fault engine's byte parser so CLI errors are uniform. *)
let packet_of_spec spec =
  match Fault.Plan.injection_of_spec (Printf.sprintf "0:frame:%s" spec) with
  | Ok { kind = Fault.Radio_frame { bytes }; _ } -> Ok bytes
  | Ok _ -> Error "unexpected injection kind"
  | Error e -> Error e

(** A deterministic fingerprint of a campaign, for identity tests:
    tier-0 and tier-1 campaigns must produce equal strings. *)
let fingerprint (m : matrix) =
  String.concat "\n"
    (List.map
       (fun t ->
         Printf.sprintf "%s/%s#%d %s frames=%d resp=%b rec=%s cyc=%d [%s] %s"
           t.system (cls_name t.cls) t.index (verdict_name t.verdict) t.frames
           t.responsive
           (match t.recovery_cycles with
            | Some c -> string_of_int c
            | None -> "-")
           t.cycles
           (String.concat ";"
              (List.map
                 (fun p ->
                   Printf.sprintf "%s=%b:%s" p.pname p.ok p.detail)
                 t.probes))
           (Format.asprintf "%a" Packet.pp_bytes t.packet))
       m.trials)
