lib/kernel/costing.ml: Rewriter
