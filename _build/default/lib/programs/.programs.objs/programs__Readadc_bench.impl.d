lib/programs/readadc_bench.ml: Asm Avr Common Machine
