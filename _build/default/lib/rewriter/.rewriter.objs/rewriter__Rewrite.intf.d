lib/rewriter/rewrite.mli: Asm Naturalized
