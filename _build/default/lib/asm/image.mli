(** Output of the assembler: flash image plus the symbol list — exactly
    what the paper's base-station rewriter consumes from the build. *)

type symbol =
  | Text of int  (** code label: flash word address *)
  | Data of int  (** data-space symbol: logical data address *)
  | Flash of int  (** flash-data symbol: flash word address *)

type t = {
  name : string;
  words : int array;  (** full flash image: code, then flash data *)
  text_words : int;  (** words below this boundary are instructions *)
  symbols : (string * symbol) list;
  data_size : int;  (** bytes of .data — the task's heap usage *)
  data_init : (int * int) list;  (** (logical address, byte) at startup *)
  entry : int;  (** word address of the entry point *)
}

(** Logical address where the heap (.data) begins (Figure 2). *)
val heap_base : int

val find_symbol : t -> string -> symbol option

(** Code size in bytes (Figure 4's "native" axis). *)
val text_bytes : t -> int

val total_bytes : t -> int
