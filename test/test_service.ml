(* The campaign service (lib/service): worker-count identity of the
   canonical result set, steal/retry/timeout/containment semantics,
   deterministic snapshot-dedup accounting, spec-file round-trips with
   line-numbered rejection, and the SIGINT drain path. *)

let serve ?(workers = 4) ?(max_retries = 0) ?job_timeout_ms ?(sigint = false)
    specs =
  let buf = Buffer.create 4096 in
  let config =
    { Service.Pool.default_config with
      workers; max_retries; job_timeout_ms; stall_us = 0 }
  in
  let outcome =
    Service.Engine.serve ~config ~sigint ~emit:(Buffer.add_string buf) specs
  in
  (outcome, Buffer.contents buf)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let stream_lines text =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' text)

(* --- worker-count identity over the seeded 200-job mix ------------------- *)

(* The test mix weaves deliberate failures into the load-test mix: ids
   congruent to 7 mod 29 raise (7 jobs in 1..200), 14 mod 29 fail once
   then succeed (7 jobs), 21 mod 29 sleep.  With max_retries = 2 the
   raising jobs burn 2 retries each and the flaky jobs 1, so the retry
   counter itself is schedule-independent: 7*2 + 7*1 = 21. *)
let mix = lazy (Service.Engine.test_mix ~seed:1 200)

let workers_identity () =
  let runs =
    List.map
      (fun w -> (w, serve ~workers:w ~max_retries:2 (Lazy.force mix)))
      [ 1; 2; 4 ]
  in
  let digests =
    List.map (fun (w, (o, _)) -> (w, o.Service.Engine.digest)) runs
  in
  (match digests with
   | (_, d1) :: rest ->
     List.iter
       (fun (w, d) ->
         Alcotest.(check string)
           (Printf.sprintf "canonical results at %d workers match 1 worker" w)
           d1 d)
       rest
   | [] -> assert false);
  List.iter
    (fun (w, ((o : Service.Engine.outcome), text)) ->
      let s = o.summary in
      Alcotest.(check int)
        (Printf.sprintf "%d workers: every job served" w)
        200 (s.completed + s.failed);
      Alcotest.(check int)
        (Printf.sprintf "%d workers: raising jobs fail alone" w)
        7 s.failed;
      Alcotest.(check int)
        (Printf.sprintf "%d workers: deterministic retry count" w)
        21 s.retried;
      Alcotest.(check int)
        (Printf.sprintf "%d workers: nothing cancelled" w)
        0 s.cancelled;
      (* Heavy jobs sit at list indices 0 mod 4, i.e. all on worker 0's
         deque at 2 or 4 workers: the idle workers must steal. *)
      if w > 1 then
        Alcotest.(check bool)
          (Printf.sprintf "%d workers: at least one steal recorded" w)
          true (s.stolen >= 1);
      (* No torn stream lines: exactly one complete JSON object per
         served job. *)
      let lines = stream_lines text in
      Alcotest.(check int)
        (Printf.sprintf "%d workers: one stream line per served job" w)
        (s.completed + s.failed)
        (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "stream line is a complete object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines;
      (* Containment: a raising job carries its exception in the stream
         record; everything after it was still served (checked by the
         200-count above). *)
      Alcotest.(check bool)
        (Printf.sprintf "%d workers: raise message lands in the stream" w)
        true
        (List.exists
           (fun l ->
             contains ~needle:"boom" l
             && contains ~needle:"\"status\":\"failed\"" l)
           lines))
    runs

(* --- retry / timeout semantics ------------------------------------------- *)

let timeout_semantics () =
  let specs =
    [ { Service.Spec.id = 1; kind = Service.Spec.Sleep { ms = 500 } } ]
  in
  let o, text = serve ~workers:1 ~max_retries:1 ~job_timeout_ms:25 specs in
  let s = o.summary in
  Alcotest.(check int) "job failed" 1 s.failed;
  Alcotest.(check int) "both attempts timed out" 2 s.timeouts;
  Alcotest.(check int) "one retry consumed" 1 s.retried;
  match s.results with
  | [ r ] ->
    Alcotest.(check bool) "final attempt marked timed out" true r.timed_out;
    Alcotest.(check int) "attempts recorded" 2 r.attempts;
    Alcotest.(check string) "deterministic error" "timeout after 25ms" r.error;
    Alcotest.(check bool) "timeout flag in canonical line" true
      (contains ~needle:"\"timeout\":1"
         (Service.Pool.canonical_line r));
    Alcotest.(check bool) "stream line carries the failure" true
      (contains ~needle:"timeout after 25ms" text)
  | _ -> Alcotest.fail "expected exactly one result"

let flaky_retry () =
  let specs =
    [ { Service.Spec.id = 1; kind = Service.Spec.Flaky { fails = 2 } } ]
  in
  (* Not enough retries: the job fails with its last deliberate error. *)
  let o, _ = serve ~workers:1 ~max_retries:1 specs in
  Alcotest.(check int) "fails when retries run out" 1 o.summary.failed;
  (* One more attempt and it lands. *)
  let o, _ = serve ~workers:1 ~max_retries:2 specs in
  Alcotest.(check int) "succeeds with enough retries" 1 o.summary.completed;
  match o.summary.results with
  | [ r ] ->
    Alcotest.(check int) "third attempt succeeded" 3 r.attempts;
    Alcotest.(check string) "attempt number in payload"
      "{\"succeeded_attempt\":3}" r.payload
  | _ -> Alcotest.fail "expected exactly one result"

(* --- snapshot dedup accounting ------------------------------------------- *)

let dedup_accounting () =
  let bisect id =
    { Service.Spec.id;
      kind =
        Service.Spec.Bisect
          { programs = [ "crc" ]; warm = 20_000; budget = 40_000;
            granularity = 8192; poke = None } }
  in
  let specs = List.init 6 (fun i -> bisect (i + 1)) in
  (* Six jobs share one warm snapshot: whoever the schedule lets in
     first captures it, the other five are hits — exactly five, at any
     worker count, because the store linearizes each semantic key. *)
  List.iter
    (fun w ->
      let o, _ = serve ~workers:w specs in
      let s = o.Service.Engine.summary in
      Alcotest.(check int)
        (Printf.sprintf "%d workers: all six bisects served" w)
        6 s.completed;
      Alcotest.(check int)
        (Printf.sprintf "%d workers: exactly five dedup hits" w)
        5 s.dedup_hits;
      Alcotest.(check int)
        (Printf.sprintf "%d workers: one stored blob" w)
        1 s.store_entries)
    [ 1; 4 ]

(* --- spec round-trip and rejection --------------------------------------- *)

let spec_roundtrip () =
  let specs = Service.Engine.test_mix ~seed:3 64 in
  let text =
    String.concat "\n" (List.map Service.Spec.to_json specs) ^ "\n"
  in
  match Service.Spec.parse_lines text with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e)
  | Ok parsed ->
    Alcotest.(check (list string))
      "printed specs parse back byte-identically"
      (List.map Service.Spec.to_json specs)
      (List.map Service.Spec.to_json parsed)

let spec_rejection () =
  let reject name text needle =
    match Service.Spec.parse_lines text with
    | Ok _ -> Alcotest.fail (name ^ ": bogus spec accepted")
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error %S mentions %S" name e needle)
        true
        (contains ~needle:needle e)
  in
  reject "non-JSON line" "nonsense\n" "line 1";
  reject "second line bad"
    "{\"job\":\"sleep\",\"ms\":1}\nnonsense\n" "line 2";
  reject "unknown job kind" "{\"job\":\"mine\"}\n" "unknown job kind";
  reject "unknown program"
    "{\"job\":\"bench\",\"program\":\"nope\"}\n" "unknown program";
  reject "unknown field"
    "{\"job\":\"sleep\",\"ms\":1,\"bogus\":7}\n" "unknown field";
  reject "range check"
    "{\"job\":\"bisect\",\"programs\":\"crc\",\"warm\":500000,\"budget\":100000}\n"
    "warm";
  reject "poke outside window"
    "{\"job\":\"bisect\",\"programs\":\"crc\",\"warm\":50000,\"budget\":100000,\"poke\":10}\n"
    "poke";
  (* Comments and blank lines are skipped but still count for line
     numbering and default ids. *)
  match Service.Spec.parse_lines "# header\n\n{\"job\":\"sleep\",\"ms\":1}\n" with
  | Ok [ { Service.Spec.id = 3; kind = Service.Spec.Sleep { ms = 1 } } ] -> ()
  | Ok _ -> Alcotest.fail "comment/blank handling changed the parse"
  | Error e -> Alcotest.fail ("commented spec rejected: " ^ e)

(* --- SIGINT drain ---------------------------------------------------------- *)

let sigint_drain () =
  (* Park a benign handler so a stray signal outside serve's window can
     never kill the test binary, then fire one SIGINT mid-run from a
     helper domain.  serve installs its drain handler synchronously
     before any job starts, well inside the helper's 50ms fuse. *)
  let previous = Sys.signal Sys.sigint Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint previous)
  @@ fun () ->
  let specs =
    List.init 60 (fun i ->
        { Service.Spec.id = i + 1; kind = Service.Spec.Sleep { ms = 5 } })
  in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Unix.kill (Unix.getpid ()) Sys.sigint)
  in
  let o, text = serve ~workers:2 ~sigint:true specs in
  Domain.join killer;
  let s = o.summary in
  Alcotest.(check bool) "interrupt observed" true o.interrupted;
  Alcotest.(check bool) "some jobs were drained away" true (s.cancelled > 0);
  Alcotest.(check bool) "running jobs finished first" true (s.completed > 0);
  Alcotest.(check int) "served + cancelled covers the queue" s.queued
    (s.completed + s.failed + s.cancelled);
  Alcotest.(check int) "nothing failed on the way down" 0 s.failed;
  (* The flush contract: every emitted line is complete. *)
  let lines = stream_lines text in
  Alcotest.(check int) "one complete line per served job"
    (s.completed + s.failed) (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "no torn lines" true
        (l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let () =
  Alcotest.run "service"
    [ ("identity",
       [ Alcotest.test_case "1/2/4 workers byte-identical" `Quick
           workers_identity ]);
      ("semantics",
       [ Alcotest.test_case "timeout" `Quick timeout_semantics;
         Alcotest.test_case "flaky retry" `Quick flaky_retry;
         Alcotest.test_case "dedup accounting" `Quick dedup_accounting;
         Alcotest.test_case "sigint drain" `Quick sigint_drain ]);
      ("spec",
       [ Alcotest.test_case "round-trip" `Quick spec_roundtrip;
         Alcotest.test_case "rejection" `Quick spec_rejection ]) ]
