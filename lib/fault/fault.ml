(* Deterministic fault injection.

   The engine never reaches into the execution tiers: it runs the
   subject with a bounded [max_cycles] (which tier-0 and tier-1 honour
   at identical stop points) and mutates state between segments.  That
   makes an injection "at cycle C" mean: at the first point the subject
   would stop anyway at or after C — the same advance-to-cycle pattern
   the snapshot bisector uses for pokes.

   Injection law: an injection is applied exactly when its [at] is <=
   the subject's clock.  On entry, injections already due count as
   applied (resume semantics); due injections are applied even when the
   segment ended in a halt (so a crash at C and a reboot at C' > C in
   the same plan compose); injections still pending when the run ends
   never fire. *)

type kind =
  | Sram_flip of { addr : int; bit : int }
  | Sram_burst of { addr : int; len : int; xor : int }
  | Reg_flip of { reg : int; bit : int }
  | Sreg_flip of { bit : int }
  | Flash_flip of { waddr : int; xor : int }
  | Radio_corrupt of { index : int; xor : int }
  | Radio_drop of { count : int }
  | Radio_frame of { bytes : int list }
  | Adc_stuck of { value : int }
  | Adc_noise of { xor : int }
  | Crash
  | Reboot
  | Clock_drift of { cycles : int }

type injection = { at : int; mote : int; kind : kind }

let describe = function
  | Sram_flip { addr; bit } -> Fmt.str "sram_flip@0x%04X.%d" addr bit
  | Sram_burst { addr; len; xor } ->
    Fmt.str "sram_burst@0x%04X+%d^0x%02X" addr len xor
  | Reg_flip { reg; bit } -> Fmt.str "reg_flip r%d.%d" reg bit
  | Sreg_flip { bit } -> Fmt.str "sreg_flip.%d" bit
  | Flash_flip { waddr; xor } -> Fmt.str "flash_flip@0x%04X^0x%04X" waddr xor
  | Radio_corrupt { index; xor } -> Fmt.str "radio_corrupt[%d]^0x%02X" index xor
  | Radio_drop { count } -> Fmt.str "radio_drop(%d)" count
  | Radio_frame { bytes } ->
    Fmt.str "radio_frame[%s]"
      (String.concat "" (List.map (Printf.sprintf "%02x") bytes))
  | Adc_stuck { value } -> Fmt.str "adc_stuck=%d" value
  | Adc_noise { xor } -> Fmt.str "adc_noise^0x%03X" xor
  | Crash -> "crash"
  | Reboot -> "reboot"
  | Clock_drift { cycles } -> Fmt.str "clock_drift+%d" cycles

let counter_name = function
  | Sram_flip _ -> "fault.sram_flip"
  | Sram_burst _ -> "fault.sram_burst"
  | Reg_flip _ -> "fault.reg_flip"
  | Sreg_flip _ -> "fault.sreg_flip"
  | Flash_flip _ -> "fault.flash_flip"
  | Radio_corrupt _ -> "fault.radio_corrupt"
  | Radio_drop _ -> "fault.radio_drop"
  | Radio_frame _ -> "fault.radio_frame"
  | Adc_stuck _ -> "fault.adc_stuck"
  | Adc_noise _ -> "fault.adc_noise"
  | Crash -> "fault.crash"
  | Reboot -> "fault.reboot"
  | Clock_drift _ -> "fault.clock_drift"

module Plan = struct
  type t = { seed : int; injections : injection list }

  let sort = List.stable_sort (fun a b -> compare a.at b.at)
  let make ?(seed = 0) injections = { seed; injections = sort injections }

  (* Hand-rolled 48-bit LCG (java.util.Random's constants) so plans do
     not depend on [Random]'s implementation: the same seed produces the
     same plan on every run and OCaml version.  All draws are forced
     into evaluation order with [let] — record/argument evaluation
     order is unspecified in OCaml. *)
  let random ~seed ~n ~window:(lo, hi) ?(motes = 1) ?(disruptive = false) () =
    let mask48 = (1 lsl 48) - 1 in
    let state = ref ((seed lxor 0x5DEECE66D) land mask48) in
    let next () =
      state := ((!state * 0x5DEECE66D) + 0xB) land mask48;
      !state lsr 18
    in
    let rand m = if m <= 0 then 0 else next () mod m in
    let sram_span =
      Machine.Layout.data_size - Machine.Layout.sram_base
    in
    let kind () =
      match rand (if disruptive then 12 else 9) with
      | 0 ->
        let addr = Machine.Layout.sram_base + rand sram_span in
        let bit = rand 8 in
        Sram_flip { addr; bit }
      | 1 ->
        let addr = Machine.Layout.sram_base + rand (sram_span - 32) in
        let len = 1 + rand 32 in
        let xor = 1 + rand 255 in
        Sram_burst { addr; len; xor }
      | 2 ->
        let reg = rand 32 in
        let bit = rand 8 in
        Reg_flip { reg; bit }
      | 3 -> Sreg_flip { bit = rand 8 }
      | 4 ->
        (* first 8 K words: where application images actually live *)
        let waddr = rand 0x2000 in
        let xor = 1 + rand 0xFFFF in
        Flash_flip { waddr; xor }
      | 5 ->
        let index = rand 4 in
        let xor = 1 + rand 255 in
        Radio_corrupt { index; xor }
      | 6 -> Radio_drop { count = 1 + rand 4 }
      | 7 -> Adc_stuck { value = rand 0x400 }
      | 8 -> Adc_noise { xor = 1 + rand 0x3FF }
      | 9 -> Clock_drift { cycles = 1 + rand 10_000 }
      | 10 -> Reboot
      | _ -> Crash
    in
    let span = max 1 (hi - lo) in
    let rec gen i acc =
      if i = 0 then List.rev acc
      else begin
        let at = lo + rand span in
        let mote = rand (max 1 motes) in
        let kind = kind () in
        gen (i - 1) ({ at; mote; kind } :: acc)
      end
    in
    { seed; injections = sort (gen n []) }

  (* Typed range checks, shared by every spec parser in the CLI
     ([--inject] and [attack --packet]): a bad field is a one-line
     [Error], never a raw exception or a silently ignored injection. *)
  let validate (i : injection) =
    let err fmt = Fmt.kstr Result.error fmt in
    let in_range what v lo hi =
      if v < lo || v > hi then
        err "%s: %s %d out of range [%d, %d]" (describe i.kind) what v lo hi
      else Ok ()
    in
    let ( let* ) = Result.bind in
    let* () = in_range "cycle" i.at 0 max_int in
    let* () = in_range "mote" i.mote 0 0xFFFF in
    match i.kind with
    | Sram_flip { addr; bit } ->
      let* () = in_range "addr" addr 0 (Machine.Layout.data_size - 1) in
      let* () = in_range "bit" bit 0 7 in
      Ok i
    | Sram_burst { addr; len; xor } ->
      let* () = in_range "addr" addr 0 (Machine.Layout.data_size - 1) in
      let* () = in_range "len" len 1 Machine.Layout.data_size in
      let* () =
        in_range "end" (addr + len) 1 Machine.Layout.data_size
      in
      let* () = in_range "xor" xor 1 0xFF in
      Ok i
    | Reg_flip { reg; bit } ->
      let* () = in_range "reg" reg 0 31 in
      let* () = in_range "bit" bit 0 7 in
      Ok i
    | Sreg_flip { bit } ->
      let* () = in_range "bit" bit 0 7 in
      Ok i
    | Flash_flip { waddr; xor } ->
      let* () = in_range "waddr" waddr 0 (Machine.Layout.flash_words - 1) in
      let* () = in_range "xor" xor 1 0xFFFF in
      Ok i
    | Radio_corrupt { index; xor } ->
      let* () = in_range "index" index 0 0xFFFF in
      let* () = in_range "xor" xor 1 0xFF in
      Ok i
    | Radio_drop { count } ->
      let* () = in_range "count" count 1 0xFFFF in
      Ok i
    | Radio_frame { bytes } ->
      let* () = in_range "frame length" (List.length bytes) 1 4096 in
      let rec bytes_ok = function
        | [] -> Ok i
        | b :: rest ->
          let* () = in_range "byte" b 0 0xFF in
          bytes_ok rest
      in
      bytes_ok bytes
    | Adc_stuck { value } ->
      let* () = in_range "value" value 0 0x3FF in
      Ok i
    | Adc_noise { xor } ->
      let* () = in_range "xor" xor 1 0x3FF in
      Ok i
    | Clock_drift { cycles } ->
      let* () = in_range "cycles" cycles 1 max_int in
      Ok i
    | Crash | Reboot -> Ok i

  (* "a7 05 41..." or "a70541...": hex bytes, spaces optional. *)
  let bytes_of_hex s =
    let compact =
      String.concat ""
        (String.split_on_char ' ' (String.trim s))
    in
    let n = String.length compact in
    if n = 0 || n mod 2 <> 0 then
      Error (Fmt.str "bad hex byte string %S (need an even digit count)" s)
    else
      let rec go i acc =
        if i >= n then Ok (List.rev acc)
        else
          match int_of_string_opt ("0x" ^ String.sub compact i 2) with
          | Some b -> go (i + 2) (b :: acc)
          | None -> Error (Fmt.str "bad hex byte %S in %S" (String.sub compact i 2) s)
      in
      go 0 []

  let injection_of_spec s =
    let ( let* ) = Result.bind in
    let int_of f =
      match int_of_string_opt (String.trim f) with
      | Some v -> Ok v
      | None -> Error (Fmt.str "bad number %S in %S" f s)
    in
    match String.split_on_char ':' (String.trim s) with
    | [] | [ "" ] -> Error "empty injection spec"
    | head :: rest ->
      let* at, mote =
        match String.split_on_char '@' head with
        | [ a ] ->
          let* a = int_of a in
          Ok (a, 0)
        | [ a; m ] ->
          let* a = int_of a in
          let* m = int_of m in
          Ok (a, m)
        | _ -> Error (Fmt.str "bad CYCLE[@MOTE] prefix %S" head)
      in
      let* kind =
        match rest with
        | [ "sram"; a; b ] ->
          let* addr = int_of a in
          let* bit = int_of b in
          Ok (Sram_flip { addr; bit })
        | [ "burst"; a; l; x ] ->
          let* addr = int_of a in
          let* len = int_of l in
          let* xor = int_of x in
          Ok (Sram_burst { addr; len; xor })
        | [ "reg"; r; b ] ->
          let* reg = int_of r in
          let* bit = int_of b in
          Ok (Reg_flip { reg; bit })
        | [ "sreg"; b ] ->
          let* bit = int_of b in
          Ok (Sreg_flip { bit })
        | [ "flash"; w; x ] ->
          let* waddr = int_of w in
          let* xor = int_of x in
          Ok (Flash_flip { waddr; xor })
        | [ "radio_corrupt"; i; x ] ->
          let* index = int_of i in
          let* xor = int_of x in
          Ok (Radio_corrupt { index; xor })
        | [ "radio_drop"; c ] ->
          let* count = int_of c in
          Ok (Radio_drop { count })
        | [ "frame"; hex ] ->
          let* bytes = bytes_of_hex hex in
          Ok (Radio_frame { bytes })
        | [ "adc_stuck"; v ] ->
          let* value = int_of v in
          Ok (Adc_stuck { value })
        | [ "adc_noise"; x ] ->
          let* xor = int_of x in
          Ok (Adc_noise { xor })
        | [ "crash" ] -> Ok Crash
        | [ "reboot" ] -> Ok Reboot
        | [ "drift"; c ] ->
          let* cycles = int_of c in
          Ok (Clock_drift { cycles })
        | _ ->
          Error
            (Fmt.str
               "unknown fault kind in %S (see sram/burst/reg/sreg/flash/\
                radio_corrupt/radio_drop/frame/adc_stuck/adc_noise/crash/\
                reboot/drift)"
               s)
      in
      validate { at; mote; kind }

  let pp fmt t =
    let n = List.length t.injections in
    Fmt.pf fmt "@[<v>plan seed=%d (%d injection%s)" t.seed n
      (if n = 1 then "" else "s");
    List.iter
      (fun i -> Fmt.pf fmt "@,  cycle %8d  mote %d  %s" i.at i.mote (describe i.kind))
      t.injections;
    Fmt.pf fmt "@]"
end

(* --- applying one injection ----------------------------------------------- *)

let apply (k : Kernel.t) = function
  | Sram_flip { addr; bit } ->
    let a = addr land 0xFFFF in
    if a < Machine.Layout.data_size then begin
      let v = Bytes.get_uint8 k.m.sram a in
      Bytes.set_uint8 k.m.sram a (v lxor (1 lsl (bit land 7)))
    end
  | Sram_burst { addr; len; xor } ->
    for a = addr to addr + len - 1 do
      if a >= 0 && a < Machine.Layout.data_size then
        Bytes.set_uint8 k.m.sram a
          (Bytes.get_uint8 k.m.sram a lxor (xor land 0xFF))
    done
  | Reg_flip { reg; bit } ->
    let r = reg land 31 in
    k.m.regs.(r) <- k.m.regs.(r) lxor (1 lsl (bit land 7))
  | Sreg_flip { bit } -> k.m.sreg <- k.m.sreg lxor (1 lsl (bit land 7))
  | Flash_flip { waddr; xor } ->
    (* through Cpu.load, the only flash-write path: invalidates the
       decode cache and compiled blocks so both tiers see the change *)
    let w = waddr land (Machine.Layout.flash_words - 1) in
    Machine.Cpu.load ~at:w k.m [| (k.m.flash.(w) lxor xor) land 0xFFFF |]
  | Radio_corrupt { index; xor } ->
    ignore (Machine.Io.corrupt_rx k.m.io ~index ~xor)
  | Radio_drop { count } -> ignore (Machine.Io.drop_rx k.m.io ~count)
  | Radio_frame { bytes } ->
    (* bytes arrive back to back at the radio's reception rate, exactly
       as a neighbour's transmission would through [Net.exchange] *)
    List.iteri
      (fun i b ->
        Machine.Io.inject_rx k.m.io ~cycles:k.m.cycles
          ~after:((i + 1) * Machine.Io.radio_byte_cycles)
          (b land 0xFF))
      bytes
  | Adc_stuck { value } ->
    k.m.io.adc_start <- None;
    k.m.io.adc_value <- value land 0x3FF
  | Adc_noise { xor } ->
    k.m.io.adc_value <- (k.m.io.adc_value lxor xor) land 0x3FF;
    k.m.io.adc_seq <- k.m.io.adc_seq + 1
  | Crash -> Kernel.crash k "injected crash"
  | Reboot -> Kernel.watchdog_reboot k
  | Clock_drift { cycles } ->
    if cycles > 0 then Machine.Cpu.fast_forward k.m (k.m.cycles + cycles)

let inject ?trace (k : Kernel.t) inj =
  let tr = Option.value trace ~default:k.trace in
  (* emit first: the event carries the pre-mutation clock, before any
     drift/reboot moves it *)
  Trace.emit tr ~mote:k.mote ~at:k.m.cycles
    (Trace.Injected { fault = describe inj.kind });
  Trace.incr tr "fault.injected";
  Trace.incr tr (counter_name inj.kind);
  apply k inj.kind

(* --- kernel engine -------------------------------------------------------- *)

let run_kernel ?(interp = false) ?(max_cycles = 2_000_000_000) ~plan
    (k : Kernel.t) : Machine.Cpu.stop =
  let injs =
    List.filter (fun i -> i.mote = k.mote) (Plan.sort plan.Plan.injections)
  in
  (* hung = abnormal halt (crash, uncontainable fault): the CPU executes
     nothing, but real time — and the watchdog — keep going, so pending
     injections still come due.  Break_hit is normal completion and ends
     the run for good. *)
  let hung () =
    match k.m.halted with
    | Some (Machine.Cpu.Fault _ | Machine.Cpu.Invalid_opcode _) -> true
    | Some Machine.Cpu.Break_hit | None -> false
  in
  let rec go injs =
    (* at <= clock counts as already applied: resume semantics *)
    let pending = List.filter (fun i -> i.at > k.m.cycles) injs in
    match pending with
    | [] -> Kernel.run ~interp ~max_cycles k
    | { at; _ } :: _ ->
      if hung () then
        if at > max_cycles then Machine.Cpu.Halted (Option.get k.m.halted)
        else begin
          Machine.Cpu.fast_forward k.m at;
          apply_due pending
        end
      else begin
        let target = min at max_cycles in
        match Kernel.run ~interp ~max_cycles:target k with
        | Machine.Cpu.Out_of_fuel -> apply_due pending
        | Machine.Cpu.Halted _ when hung () ->
          (* uncontainable mid-segment fault: re-enter the hung path so
             the clock still advances to any pending injection *)
          go injs
        | stop -> stop
      end
  and apply_due pending =
    let due, rest = List.partition (fun i -> i.at <= k.m.cycles) pending in
    List.iter (inject k) due;
    if k.m.cycles >= max_cycles then
      match k.m.halted with
      | Some h -> Machine.Cpu.Halted h
      | None -> Machine.Cpu.Out_of_fuel
    else go rest
  in
  go injs

(* --- network engine ------------------------------------------------------- *)

let run_net ?(domains = 1) ?(max_cycles = 2_000_000_000) ~plan (n : Net.t) =
  let horizon () = n.quanta * n.quantum in
  let injs =
    List.filter
      (fun i -> i.mote >= 0 && i.mote < Array.length n.nodes)
      (Plan.sort plan.Plan.injections)
  in
  let live_count () =
    Array.fold_left
      (fun acc (nd : Net.node) -> if nd.finished then acc else acc + 1)
      0 n.nodes
  in
  let inject_net i =
    let node = Net.node n i.mote in
    inject ~trace:n.trace node.kernel i;
    (* a watchdog reboot revives a node the coordinator had retired *)
    match i.kind with Reboot -> node.finished <- false | _ -> ()
  in
  let rec go injs =
    let pending = List.filter (fun i -> i.at > horizon ()) injs in
    match pending with
    | [] -> Net.run ~domains ~max_cycles n
    | { at; _ } :: _ ->
      let before = horizon () in
      let target = min at max_cycles in
      ignore (Net.run ~domains ~max_cycles:target n);
      let due, rest = List.partition (fun i -> i.at <= horizon ()) pending in
      List.iter inject_net due;
      if horizon () >= max_cycles then live_count ()
      else if due = [] && horizon () = before then
        (* every mote finished: the lockstep clock has stopped, pending
           injections can never come due *)
        live_count ()
      else go rest
  in
  go injs

(* --- campaigns ------------------------------------------------------------ *)

module Campaign = struct
  type trial = {
    index : int;
    plan : Plan.t;
    injected : int;
    stop : string;
    cycles : int;
    clean_exits : int;
    faulted : int;
    contained : bool;
    reason : string;
  }

  type report = { seed : int; trials : trial list; trace : Trace.t }

  (* splitmix-style mixer: trial seeds decorrelated from consecutive
     campaign seeds *)
  let mix seed i =
    let z = (seed + (i * 0x9E3779B9)) land max_int in
    let z = (z lxor (z lsr 16)) * 0x45D9F3B land max_int in
    (z lxor (z lsr 13)) land 0x3FFFFFFF

  let run ?(interp = false) ?config ?(trials = 8) ?(faults = 6)
      ?(max_cycles = 1_500_000) ?(disruptive = false) ?on_trial ~seed images =
    let trace = Trace.create () in
    let window = (max_cycles / 10, max_cycles * 9 / 10) in
    let one index =
      let k = Kernel.boot ?config images in
      let plan =
        Plan.random ~seed:(mix seed index) ~n:faults ~window ~disruptive ()
      in
      let stop = run_kernel ~interp ~max_cycles ~plan k in
      let injected = Trace.counter k.trace "fault.injected" in
      List.iter
        (fun (name, v) ->
          if String.length name >= 6 && String.sub name 0 6 = "fault." then
            Trace.incr ~by:v trace name)
        (Trace.counters k.trace);
      let outcomes = Kernel.outcomes k in
      let clean_exits =
        List.length (List.filter (fun (_, r) -> r = "exit") outcomes)
      in
      let faulted =
        List.length (List.filter (fun (_, r) -> r <> "exit") outcomes)
      in
      (* The verdict and its evidence.  PR 5 dropped the evidence on the
         floor; the attack matrix needs it, so record which check failed
         (and at what cycle), or what contained the damage. *)
      let survived =
        match stop with
        | Machine.Cpu.Halted Machine.Cpu.Break_hit | Machine.Cpu.Out_of_fuel ->
          true
        | _ -> false
      in
      let invariant_failure =
        match Kernel.check_invariants k with
        | () -> None
        | exception Failure msg -> Some msg
      in
      let contained = survived && invariant_failure = None in
      let reason =
        if not survived then
          Fmt.str "mote dead at cycle %d (%a)" k.m.cycles Machine.Cpu.pp_stop
            stop
        else
          match invariant_failure with
          | Some msg -> Fmt.str "invariant violated: %s" msg
          | None ->
            let first_kill =
              List.find_opt
                (fun (e : Trace.event) ->
                  match e.kind with
                  | Trace.Terminated { reason; _ } -> reason <> "exit"
                  | _ -> false)
                (Kernel.event_log k)
            in
            (match first_kill with
             | Some { at; kind = Trace.Terminated { task; reason }; _ } ->
               Fmt.str "task %d killed at cycle %d (%s); siblings unharmed"
                 task at reason
             | _ when faulted = 0 -> "no task harmed"
             | _ -> "faulted tasks contained")
      in
      { index;
        plan;
        injected;
        stop = Fmt.str "%a" Machine.Cpu.pp_stop stop;
        cycles = k.m.cycles;
        clean_exits;
        faulted;
        contained;
        reason }
    in
    let rec go i acc =
      if i = trials then List.rev acc
      else begin
        let t = one i in
        (match on_trial with Some f -> f t | None -> ());
        go (i + 1) (t :: acc)
      end
    in
    let ts = go 0 [] in
    let sum f = List.fold_left (fun a t -> a + f t) 0 ts in
    Trace.set_counter trace "fault.trials" trials;
    Trace.set_counter trace "fault.contained_trials"
      (List.length (List.filter (fun t -> t.contained) ts));
    Trace.set_counter trace "fault.clean_exits" (sum (fun t -> t.clean_exits));
    Trace.set_counter trace "fault.faulted_tasks" (sum (fun t -> t.faulted));
    { seed; trials = ts; trace }

  let pp_report fmt r =
    let contained = List.filter (fun t -> t.contained) r.trials in
    Fmt.pf fmt "@[<v>campaign seed=%d: %d/%d trials contained@,@," r.seed
      (List.length contained) (List.length r.trials);
    Fmt.pf fmt "trial  injected  clean  faulted  contained      cycles  stop";
    List.iter
      (fun t ->
        Fmt.pf fmt "@,%5d  %8d  %5d  %7d  %9s  %10d  %s@,%s%s" t.index
          t.injected t.clean_exits t.faulted
          (if t.contained then "yes" else "NO")
          t.cycles t.stop "       `- " t.reason)
      r.trials;
    Fmt.pf fmt "@]"
end
