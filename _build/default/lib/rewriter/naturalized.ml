(* Result of naturalizing one application image. *)

type stats = {
  patched : int;  (** instructions replaced in the text *)
  trampolines : int;  (** distinct trampoline bodies emitted *)
  merged : int;  (** trampoline requests satisfied by an existing body *)
  shift_entries : int;  (** 16->32-bit inflations (shift-table rows) *)
}

type t = {
  source : Asm.Image.t;
  base : int;  (** flash word address where the naturalized program starts *)
  words : int array;  (** patched text, relocated flash data, then trampolines *)
  text_words : int;  (** patched text size (= original text + shift entries) *)
  rodata_words : int;
  support_words : int;  (** shared services + trampolines *)
  shift : Shift_table.t;
  heap_end_logical : int;  (** static heap bound used by the translation *)
  entry : int;  (** naturalized entry point (absolute flash word address) *)
  stats : stats;
}

(** Total flash words occupied when loaded at [base]. *)
let total_words t = Array.length t.words

let total_bytes t = 2 * total_words t

(** Code inflation ratio relative to the original program (Figure 4's
    y-axis is these byte counts). *)
let inflation t = float_of_int (total_bytes t) /. float_of_int (Asm.Image.total_bytes t.source)
