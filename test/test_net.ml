(* Multi-mote network tests: multi-hop byte collection over a chain of
   SenSmart motes running minic programs, with and without loss. *)

let compile ~name src = Minic.Codegen.compile_source ~name src

let leaf ~packets = compile ~name:"leaf" (Printf.sprintf {|
  var sent;
  fun main() {
    sent = 0;
    while (sent < %d) {
      radio_send(0x55);
      radio_send(sent);
      radio_send(sent * 3);
      sent = sent + 1;
    }
    halt;
  }
|} packets)

let relay ~bytes = compile ~name:"relay" (Printf.sprintf {|
  var fwd;
  fun main() {
    fwd = 0;
    while (fwd < %d) {
      if (radio_avail()) {
        radio_send(radio_recv());
        fwd = fwd + 1;
      }
    }
    halt;
  }
|} bytes)

let sink ~bytes = compile ~name:"sink" (Printf.sprintf {|
  var got;
  var sum;
  fun main() {
    got = 0;
    sum = 0;
    while (got < %d) {
      if (radio_avail()) {
        sum = sum + radio_recv();
        got = got + 1;
      }
    }
    halt;
  }
|} bytes)

let three_hop_collection () =
  let packets = 10 in
  let bytes = 3 * packets in
  let net =
    Net.create
      [ [ sink ~bytes ]; [ relay ~bytes ]; [ leaf ~packets ] ]
  in
  Net.chain net;
  let still_running = Net.run ~max_cycles:20_000_000 net in
  Alcotest.(check int) "all motes finished" 0 still_running;
  let sk = (Net.node net 0).kernel in
  Alcotest.(check int) "sink got every byte" bytes (Kernel.read_var sk 0 "got");
  (* sum of 0x55 + i + 3i for i in 0..9 *)
  let expected = (packets * 0x55) + (4 * (packets * (packets - 1) / 2)) in
  Alcotest.(check int) "payload intact across two hops" expected
    (Kernel.read_var sk 0 "sum")

let lossy_link_drops_bytes () =
  let packets = 10 in
  let bytes = 3 * packets in
  let net =
    Net.create ~loss_permille:300
      [ [ sink ~bytes ]; [ leaf ~packets ] ]
  in
  Net.chain net;
  (* The sink will not see all bytes; it must still be running. *)
  let still = Net.run ~max_cycles:3_000_000 net in
  Alcotest.(check bool) "sink still waiting" true (still >= 1);
  Alcotest.(check bool) "some bytes dropped" true (net.dropped > 0);
  Alcotest.(check bool) "some bytes delivered" true (net.routed > 0)

let broadcast_reaches_all_neighbours () =
  let bytes = 3 in
  let listener = sink ~bytes in
  let net =
    Net.create [ [ leaf ~packets:1 ]; [ listener ]; [ listener ] ]
  in
  Net.link net 0 1;
  Net.link net 0 2;
  let still = Net.run ~max_cycles:10_000_000 net in
  Alcotest.(check int) "everyone finished" 0 still;
  Alcotest.(check int) "listener 1 heard" bytes
    (Kernel.read_var (Net.node net 1).kernel 0 "got");
  Alcotest.(check int) "listener 2 heard" bytes
    (Kernel.read_var (Net.node net 2).kernel 0 "got")

let multitasking_mote_in_a_network () =
  (* A mote can run the relay *and* an unrelated compute task; SenSmart
     keeps both making progress. *)
  let packets = 6 in
  let bytes = 3 * packets in
  let compute = Asm.Assembler.assemble (Programs.Lfsr_bench.program ()) in
  let net =
    Net.create
      [ [ sink ~bytes ]; [ relay ~bytes; compute ]; [ leaf ~packets ] ]
  in
  Net.chain net;
  let still = Net.run ~max_cycles:30_000_000 net in
  Alcotest.(check int) "all finished" 0 still;
  let mid = (Net.node net 1).kernel in
  Alcotest.(check int) "lfsr alongside relaying"
    (Programs.Lfsr_bench.expected ())
    (Kernel.read_var mid 1 "bench_result");
  Alcotest.(check int) "sink complete" bytes
    (Kernel.read_var (Net.node net 0).kernel 0 "got")

(* Regression: exchange must drain the TX FIFO, not rescan an
   ever-growing transmit history (the old list made exchange O(total²)
   and re-delivered nothing only thanks to a consumed-counter).  After
   any run, every mote's queue is empty and the monotone byte counter
   still reflects the full history. *)
let exchange_drains_tx_queue () =
  let packets = 10 in
  let bytes = 3 * packets in
  let net = Net.create [ [ sink ~bytes ]; [ leaf ~packets ] ] in
  Net.chain net;
  let still = Net.run ~max_cycles:20_000_000 net in
  Alcotest.(check int) "finished" 0 still;
  Array.iter
    (fun (n : Net.node) ->
      Alcotest.(check bool)
        (Printf.sprintf "mote %d tx queue drained" n.id)
        true
        (Queue.is_empty n.kernel.m.io.radio_tx))
    net.nodes;
  let src = (Net.node net 1).kernel.m.io in
  Alcotest.(check int) "tx_count stays monotone" bytes src.radio_tx_count;
  Alcotest.(check int) "every byte delivered once" bytes net.routed

(* Routing events and counters land in the shared trace sink. *)
let trace_records_routing () =
  let packets = 3 in
  let bytes = 3 * packets in
  let tr = Trace.create () in
  let net = Net.create ~trace:tr [ [ sink ~bytes ]; [ leaf ~packets ] ] in
  Net.chain net;
  ignore (Net.run ~max_cycles:20_000_000 net);
  Net.publish_counters net;
  Alcotest.(check int) "net.routed counter" net.routed
    (Trace.counter tr "net.routed");
  let routed_events =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           match e.kind with Trace.Routed _ -> true | _ -> false)
         (Trace.events tr))
  in
  Alcotest.(check int) "one Routed event per byte" net.routed routed_events;
  let names = List.map fst (Trace.counters tr) in
  Alcotest.(check bool) "per-mote kernel counters published" true
    (List.mem "mote0.kernel.traps" names
     && List.mem "mote1.kernel.traps" names);
  Alcotest.(check bool) "per-mote cycles accounted" true
    (Trace.counter tr "mote0.cpu.cycles" > 0
     && Trace.counter tr "mote1.cpu.cycles" > 0)

let () =
  Alcotest.run "net"
    [ ("collection",
       [ Alcotest.test_case "three-hop collection" `Quick three_hop_collection;
         Alcotest.test_case "lossy link" `Quick lossy_link_drops_bytes;
         Alcotest.test_case "broadcast" `Quick broadcast_reaches_all_neighbours;
         Alcotest.test_case "multitasking relay" `Quick multitasking_mote_in_a_network ]);
      ("plumbing",
       [ Alcotest.test_case "tx queue drained" `Quick exchange_drains_tx_queue;
         Alcotest.test_case "trace records routing" `Quick trace_records_routing ]) ]
