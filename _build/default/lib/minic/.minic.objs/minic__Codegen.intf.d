lib/minic/codegen.mli: Asm Ast
