(* Minimal AVR ELF32 reader/writer (program headers only). *)

let data_space = 0x800000
let em_avr = 0x53
let ehdr_size = 52
let phdr_size = 32

type segment = {
  vaddr : int;
  paddr : int;
  filesz : int;
  memsz : int;
  data : string;
}

type t = { entry : int; segments : segment list }

type error =
  | Bad_magic
  | Not_elf32
  | Not_little_endian
  | Not_executable of { e_type : int }
  | Not_avr of { machine : int }
  | Truncated of { what : string; need : int; have : int }

let error_message = function
  | Bad_magic -> "not an ELF file (bad magic)"
  | Not_elf32 -> "not a 32-bit ELF"
  | Not_little_endian -> "not little-endian"
  | Not_executable { e_type } ->
    Printf.sprintf "not an executable (e_type %d)" e_type
  | Not_avr { machine } ->
    Printf.sprintf "not an AVR image (e_machine 0x%02x)" machine
  | Truncated { what; need; have } ->
    Printf.sprintf "truncated file: %s needs %d bytes, file has %d" what need have

exception Fail of error

let u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let u32 s off =
  u16 s off lor (u16 s (off + 2) lsl 16)

let need s what n =
  if String.length s < n then
    raise (Fail (Truncated { what; need = n; have = String.length s }))

let parse (s : string) : (t, error) result =
  try
    need s "ELF header" ehdr_size;
    if String.sub s 0 4 <> "\x7fELF" then raise (Fail Bad_magic);
    if Char.code s.[4] <> 1 then raise (Fail Not_elf32);
    if Char.code s.[5] <> 1 then raise (Fail Not_little_endian);
    let e_type = u16 s 16 in
    if e_type <> 2 then raise (Fail (Not_executable { e_type }));
    let machine = u16 s 18 in
    if machine <> em_avr then raise (Fail (Not_avr { machine }));
    let entry = u32 s 24 in
    let phoff = u32 s 28 in
    let phentsize = u16 s 42 in
    let phnum = u16 s 44 in
    let segments = ref [] in
    for i = 0 to phnum - 1 do
      let off = phoff + (i * phentsize) in
      need s (Printf.sprintf "program header %d" i) (off + phdr_size);
      let p_type = u32 s off in
      if p_type = 1 (* PT_LOAD *) then begin
        let p_offset = u32 s (off + 4) in
        let vaddr = u32 s (off + 8) in
        let paddr = u32 s (off + 12) in
        let filesz = u32 s (off + 16) in
        let memsz = u32 s (off + 20) in
        need s (Printf.sprintf "segment %d data" i) (p_offset + filesz);
        segments :=
          { vaddr; paddr; filesz; memsz; data = String.sub s p_offset filesz }
          :: !segments
      end
    done;
    Ok { entry; segments = List.rev !segments }
  with Fail e -> Error e

let encode ~entry (segments : segment list) : string =
  let n = List.length segments in
  let buf = Buffer.create 4096 in
  let w8 v = Buffer.add_char buf (Char.chr (v land 0xFF)) in
  let w16 v = w8 v; w8 (v lsr 8) in
  let w32 v = w16 (v land 0xFFFF); w16 ((v lsr 16) land 0xFFFF) in
  (* e_ident *)
  Buffer.add_string buf "\x7fELF";
  w8 1 (* ELFCLASS32 *); w8 1 (* ELFDATA2LSB *); w8 1 (* EV_CURRENT *);
  for _ = 7 to 15 do w8 0 done;
  w16 2 (* ET_EXEC *); w16 em_avr; w32 1 (* e_version *);
  w32 entry;
  w32 ehdr_size (* e_phoff *); w32 0 (* e_shoff *); w32 0 (* e_flags *);
  w16 ehdr_size; w16 phdr_size; w16 n;
  w16 0 (* e_shentsize *); w16 0 (* e_shnum *); w16 0 (* e_shstrndx *);
  (* Program headers; segment bytes packed right after the header table. *)
  let data_start = ehdr_size + (n * phdr_size) in
  let off = ref data_start in
  List.iter
    (fun seg ->
      w32 1 (* PT_LOAD *);
      w32 !off;
      w32 seg.vaddr;
      w32 seg.paddr;
      w32 seg.filesz;
      w32 seg.memsz;
      w32 5 (* PF_R|PF_X *);
      w32 1 (* p_align *);
      off := !off + seg.filesz)
    segments;
  List.iter
    (fun seg ->
      if String.length seg.data <> seg.filesz then
        invalid_arg "Elf.encode: data length <> filesz";
      Buffer.add_string buf seg.data)
    segments;
  Buffer.contents buf
