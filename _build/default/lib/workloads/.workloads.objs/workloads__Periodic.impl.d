lib/workloads/periodic.ml: Asm Avr Fmt Format Kernel List Machine Matevm Native Printf Programs Tkernel
