(* "eventchain" kernel benchmark: a chain of event handlers dispatched
   through function pointers stored in the heap, the split-transaction
   idiom of event-driven sensornet code.  Exercises ICALL and hence the
   runtime shift-table translation of program addresses. *)

open Asm.Macros

let handlers = 4

let program ?(rounds = 60) () =
  (* Handlers share one bump routine, as factored event-driven code
     would; each adds i+1 to the 16-bit counter (amount in r18). *)
  let bump =
    [ lbl "bump";
      lds 16 "counter"; add 16 18; sts "counter" 16;
      lds 17 "counter_hi"; ldi 19 0; adc 17 19; sts "counter_hi" 17; ret ]
  in
  let handler i =
    [ lbl (Printf.sprintf "h%d" i); ldi 18 (i + 1); call "bump"; ret ]
  in
  let install i =
    (* Store handler i's word address into the heap pointer table. *)
    [ Asm.Ast.Ldi_text_lo (16, Printf.sprintf "h%d" i);
      sts_off "table" (2 * i) 16;
      Asm.Ast.Ldi_text_hi (16, Printf.sprintf "h%d" i);
      sts_off "table" ((2 * i) + 1) 16 ]
  in
  let dispatch i =
    [ lds_off 30 "table" (2 * i); lds_off 31 "table" ((2 * i) + 1); icall ]
  in
  Asm.Ast.program "eventchain"
    ~data:[ { dname = "table"; size = 2 * handlers; init = [] };
            { dname = "counter"; size = 1; init = [] };
            { dname = "counter_hi"; size = 1; init = [] };
            Common.result_var ]
    ((lbl "start" :: sp_init)
     @ List.concat (List.init handlers install)
     @ loop_n 20 rounds (List.concat (List.init handlers dispatch))
     @ [ lds 24 "counter"; lds 25 "counter_hi" ]
     @ Common.store_result16 24 25
     @ [ jmp "end" ]
     @ List.concat (List.init handlers handler)
     @ bump
     @ [ lbl "end"; break ])

let expected ?(rounds = 60) () =
  rounds * (handlers * (handlers + 1) / 2) land 0xFFFF
