test/test_minic.ml: Alcotest Array Asm Fmt Kernel List Machine Minic Printf Programs QCheck QCheck_alcotest String Workloads
