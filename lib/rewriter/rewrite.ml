(* The base-station binary rewriter (Section IV-A): the pipeline driver.

   The work happens in the three stage modules — Recovery (block
   recovery over the decoded text), Transform (patch selection and
   grouping), Redirection (layout fixpoint, trampoline pool, emission).
   This module wires them together and assembles the Report. *)

type error = Rewrite_error.t =
  | Out_of_heap of { addr : int; insn : string; target : int; heap_end : int }
  | Misaligned_target of { addr : int; target : int }
  | Unsupported of { addr : int; insn : string; reason : string }
  | Internal of string

exception Error = Rewrite_error.E

let error_message = Rewrite_error.message

type config = Transform.config = {
  group_accesses : bool;
  group_sp : bool;
  group_pushes : bool;
  preempt : bool;
}

let default_config = Transform.default_config

let pipeline ?(config = default_config) ~base (img : Asm.Image.t) :
    Naturalized.t * Report.t =
  let heap_end = Asm.Image.heap_base + img.data_size in
  let recovery = Recovery.run img in
  let sites, transform_diags = Transform.classify ~config ~recovery ~heap_end img in
  let outcome = Redirection.run ~recovery ~sites ~base ~heap_end img in
  (outcome.nat, Report.make ~recovery ~transform_diags ~outcome img)

let run ?config ~base img = fst (pipeline ?config ~base img)
