lib/rewriter/shift_table.mli:
