lib/kernel/relocation.mli:
