lib/minic/ast.ml:
