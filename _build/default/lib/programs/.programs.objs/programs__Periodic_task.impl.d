lib/programs/periodic_task.ml: Asm Common Machine
